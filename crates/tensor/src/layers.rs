//! Network layers and the [`Sequential`] container.
//!
//! Layers are a closed enum rather than trait objects so that whole networks
//! serialize with serde (models are trained once per stream and persisted,
//! per §4.1 of the paper).

use crate::init;
use crate::ops::{self, ConvGeom, ConvScratch};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A learnable parameter: value, gradient accumulator, and SGD momentum state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
    pub velocity: Tensor,
}

impl Param {
    /// Wrap an initialized value with zeroed gradient/velocity buffers.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        let velocity = Tensor::zeros(value.shape());
        Param {
            value,
            grad,
            velocity,
        }
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// 2-D convolution layer (NCHW).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Conv2d {
    pub weight: Param,
    pub bias: Param,
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
    #[serde(skip)]
    cache_input: Option<Tensor>,
    /// Persistent im2col/GEMM buffers reused across forward calls so the
    /// inference hot path stops reallocating per image (DESIGN.md §10).
    #[serde(skip)]
    scratch: ConvScratch,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl rand::Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = init::he_normal(&[out_channels, in_channels, kernel, kernel], fan_in, rng);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            cache_input: None,
            scratch: ConvScratch::default(),
        }
    }

    fn geom(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom::new(h, w, self.kernel, self.stride, self.pad)
            .unwrap_or_else(|e| panic!("Conv2d: {}", e))
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let geom = self.geom(input.shape()[2], input.shape()[3]);
        if train {
            self.cache_input = Some(input.clone());
        }
        ops::conv2d_scratch(
            input,
            &self.weight.value,
            &self.bias.value,
            geom,
            &mut self.scratch,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cache_input
            .as_ref()
            .expect("Conv2d::backward before forward(train=true)");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let geom = self.geom(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let oc = self.out_channels;
        let k = self.kernel;
        let w_mat = self.weight.value.clone().reshape(&[oc, c * k * k]);

        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let plane = c * h * w;
        // Per-image work is independent; parallelize over the batch and
        // reduce the per-image weight/bias gradients afterwards.
        use rayon::prelude::*;
        let in_data = input.data();
        let go_data = grad_out.data();
        let per_image: Vec<(Tensor, Vec<f32>, Vec<f32>)> = (0..n)
            .into_par_iter()
            .map(|b| {
                let img = &in_data[b * plane..(b + 1) * plane];
                let cols = ops::im2col(img, c, geom);
                let dy = Tensor::from_vec(
                    &[oc, oh * ow],
                    go_data[b * oc * oh * ow..(b + 1) * oc * oh * ow].to_vec(),
                );
                // dW_b = dy * colsᵀ
                let dw = ops::matmul_nt(&dy, &cols);
                // db_b = row sums of dy
                let db: Vec<f32> = (0..oc)
                    .map(|o| dy.data()[o * oh * ow..(o + 1) * oh * ow].iter().sum())
                    .collect();
                // dx_b = col2im(Wᵀ dy)
                let dcols = ops::matmul_tn(&w_mat, &dy);
                let dx = ops::col2im(&dcols, c, geom);
                (dw, db, dx)
            })
            .collect();
        for (b, (dw, db, dx)) in per_image.into_iter().enumerate() {
            self.weight.grad.add_assign(&dw.reshape(&[oc, c, k, k]));
            for (g, d) in self.bias.grad.data_mut().iter_mut().zip(db.iter()) {
                *g += d;
            }
            grad_in.data_mut()[b * plane..(b + 1) * plane].copy_from_slice(&dx);
        }
        grad_in
    }
}

/// 2-D max pooling layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MaxPool2d {
    pub kernel: usize,
    pub stride: usize,
    #[serde(skip)]
    cache: Option<(Vec<u32>, Vec<usize>)>,
}

impl MaxPool2d {
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, arg) = ops::maxpool2d(input, self.kernel, self.stride);
        if train {
            self.cache = Some((arg, input.shape().to_vec()));
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (arg, shape) = self
            .cache
            .as_ref()
            .expect("MaxPool2d::backward before forward(train=true)");
        ops::maxpool2d_backward(grad_out, arg, shape)
    }
}

/// Fully connected layer: `y = x Wᵀ + b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    pub weight: Param, // (out, in)
    pub bias: Param,   // (out)
    pub in_features: usize,
    pub out_features: usize,
    #[serde(skip)]
    cache_input: Option<Tensor>,
}

impl Dense {
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl rand::Rng) -> Self {
        let weight =
            init::xavier_uniform(&[out_features, in_features], in_features, out_features, rng);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cache_input: None,
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 2, "Dense expects rank-2 input");
        if train {
            self.cache_input = Some(input.clone());
        }
        let mut out = ops::matmul_nt(input, &self.weight.value);
        let of = self.out_features;
        for row in out.data_mut().chunks_mut(of) {
            for (v, b) in row.iter_mut().zip(self.bias.value.data().iter()) {
                *v += b;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cache_input
            .as_ref()
            .expect("Dense::backward before forward(train=true)");
        // dW = dyᵀ x  — (out, n)*(n, in)
        let dw = ops::matmul_tn(grad_out, input);
        self.weight.grad.add_assign(&dw);
        let of = self.out_features;
        for row in grad_out.data().chunks(of) {
            for (g, r) in self.bias.grad.data_mut().iter_mut().zip(row.iter()) {
                *g += r;
            }
        }
        // dx = dy W
        ops::matmul(grad_out, &self.weight.value)
    }
}

/// Activation function selector for [`Activation`] layers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Act {
    Relu,
    LeakyRelu(f32),
    Sigmoid,
}

/// Element-wise activation layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Activation {
    pub act: Act,
    #[serde(skip)]
    cache: Option<Tensor>, // pre-activation input for Relu/Leaky, output for Sigmoid
}

impl Activation {
    pub fn new(act: Act) -> Self {
        Activation { act, cache: None }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = match self.act {
            Act::Relu => ops::relu(input),
            Act::LeakyRelu(a) => ops::leaky_relu(input, a),
            Act::Sigmoid => ops::sigmoid(input),
        };
        if train {
            self.cache = Some(match self.act {
                Act::Sigmoid => out.clone(),
                _ => input.clone(),
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("Activation::backward before forward(train=true)");
        let mut grad = grad_out.clone();
        match self.act {
            Act::Relu => {
                for (g, &x) in grad.data_mut().iter_mut().zip(cache.data().iter()) {
                    if x <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Act::LeakyRelu(a) => {
                for (g, &x) in grad.data_mut().iter_mut().zip(cache.data().iter()) {
                    if x <= 0.0 {
                        *g *= a;
                    }
                }
            }
            Act::Sigmoid => {
                for (g, &y) in grad.data_mut().iter_mut().zip(cache.data().iter()) {
                    *g *= y * (1.0 - y);
                }
            }
        }
        grad
    }
}

/// 2-D average pooling layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AvgPool2d {
    pub kernel: usize,
    pub stride: usize,
    #[serde(skip)]
    cache_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    pub fn new(kernel: usize, stride: usize) -> Self {
        AvgPool2d {
            kernel,
            stride,
            cache_shape: None,
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "AvgPool2d expects NCHW");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let oh = (h - k) / self.stride + 1;
        let ow = (w - k) / self.stride + 1;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let norm = 1.0 / (k * k) as f32;
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..k {
                            for kx in 0..k {
                                acc +=
                                    input.at4(b, ch, oy * self.stride + ky, ox * self.stride + kx);
                            }
                        }
                        *out.at4_mut(b, ch, oy, ox) = acc * norm;
                    }
                }
            }
        }
        if train {
            self.cache_shape = Some(input.shape().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cache_shape
            .as_ref()
            .expect("AvgPool2d::backward before forward(train=true)");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let k = self.kernel;
        let oh = (h - k) / self.stride + 1;
        let ow = (w - k) / self.stride + 1;
        let mut grad_in = Tensor::zeros(shape);
        let norm = 1.0 / (k * k) as f32;
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.at4(b, ch, oy, ox) * norm;
                        for ky in 0..k {
                            for kx in 0..k {
                                *grad_in.at4_mut(
                                    b,
                                    ch,
                                    oy * self.stride + ky,
                                    ox * self.stride + kx,
                                ) += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// Per-channel batch normalization over NCHW activations, with learnable
/// scale/shift and running statistics for inference.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchNorm2d {
    pub gamma: Param,
    pub beta: Param,
    pub running_mean: Tensor,
    pub running_var: Tensor,
    pub momentum: f32,
    pub eps: f32,
    #[serde(skip)]
    cache: Option<(Tensor, Vec<f32>, Vec<f32>)>, // (normalized, batch mean, batch inv_std)
}

impl BatchNorm2d {
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects NCHW");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut out = input.clone();
        if train {
            let mut means = vec![0.0f32; c];
            let mut inv_stds = vec![0.0f32; c];
            let mut normalized = Tensor::zeros(input.shape());
            for ch in 0..c {
                let mut sum = 0.0f32;
                for b in 0..n {
                    for i in 0..plane {
                        sum += input.data()[((b * c + ch) * plane) + i];
                    }
                }
                let mean = sum / count;
                let mut var = 0.0f32;
                for b in 0..n {
                    for i in 0..plane {
                        let d = input.data()[((b * c + ch) * plane) + i] - mean;
                        var += d * d;
                    }
                }
                var /= count;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                means[ch] = mean;
                inv_stds[ch] = inv_std;
                self.running_mean.data_mut()[ch] =
                    (1.0 - self.momentum) * self.running_mean.data()[ch] + self.momentum * mean;
                self.running_var.data_mut()[ch] =
                    (1.0 - self.momentum) * self.running_var.data()[ch] + self.momentum * var;
                let (g, bt) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                for b in 0..n {
                    for i in 0..plane {
                        let idx = ((b * c + ch) * plane) + i;
                        let xn = (input.data()[idx] - mean) * inv_std;
                        normalized.data_mut()[idx] = xn;
                        out.data_mut()[idx] = g * xn + bt;
                    }
                }
            }
            self.cache = Some((normalized, means, inv_stds));
        } else {
            for ch in 0..c {
                let mean = self.running_mean.data()[ch];
                let inv_std = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
                let (g, bt) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                for b in 0..n {
                    for i in 0..plane {
                        let idx = ((b * c + ch) * plane) + i;
                        out.data_mut()[idx] = g * (input.data()[idx] - mean) * inv_std + bt;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (normalized, _means, inv_stds) = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward before forward(train=true)");
        let shape = normalized.shape().to_vec();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut grad_in = Tensor::zeros(&shape);
        #[allow(clippy::needless_range_loop)] // ch also indexes gamma/beta state
        for ch in 0..c {
            let g = self.gamma.value.data()[ch];
            let inv_std = inv_stds[ch];
            // accumulate dgamma/dbeta and intermediate sums
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xn = 0.0f32;
            for b in 0..n {
                for i in 0..plane {
                    let idx = ((b * c + ch) * plane) + i;
                    let dy = grad_out.data()[idx];
                    sum_dy += dy;
                    sum_dy_xn += dy * normalized.data()[idx];
                }
            }
            self.gamma.grad.data_mut()[ch] += sum_dy_xn;
            self.beta.grad.data_mut()[ch] += sum_dy;
            for b in 0..n {
                for i in 0..plane {
                    let idx = ((b * c + ch) * plane) + i;
                    let dy = grad_out.data()[idx];
                    let xn = normalized.data()[idx];
                    grad_in.data_mut()[idx] =
                        g * inv_std / count * (count * dy - sum_dy - xn * sum_dy_xn);
                }
            }
        }
        grad_in
    }
}

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; inference is a
/// no-op. The mask is drawn from a deterministic counter-based generator so
/// training remains reproducible without threading an RNG through forward.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dropout {
    pub p: f32,
    /// Advances every training forward so masks differ across steps.
    counter: u64,
    #[serde(skip)]
    cache_mask: Option<Vec<bool>>,
}

impl Dropout {
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p in [0,1)");
        Dropout {
            p,
            counter: 0,
            cache_mask: None,
        }
    }

    fn keep(seed: u64, i: usize, p: f32) -> bool {
        // splitmix-style hash -> uniform in [0,1)
        let mut z = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let u = ((z >> 11) as f64) / ((1u64 << 53) as f64);
        u >= p as f64
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            return input.clone();
        }
        self.counter += 1;
        let seed = self.counter;
        let scale = 1.0 / (1.0 - self.p);
        let mut mask = vec![false; input.len()];
        let mut out = input.clone();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            if Self::keep(seed, i, self.p) {
                mask[i] = true;
                *v *= scale;
            } else {
                *v = 0.0;
            }
        }
        self.cache_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .cache_mask
            .as_ref()
            .expect("Dropout::backward before forward(train=true)");
        let scale = 1.0 / (1.0 - self.p);
        let mut grad = grad_out.clone();
        for (g, &keep) in grad.data_mut().iter_mut().zip(mask.iter()) {
            if keep {
                *g *= scale;
            } else {
                *g = 0.0;
            }
        }
        grad
    }
}

/// Global max pooling `(n, c, h, w) -> (n, c)`: keeps the strongest spatial
/// response per channel, making the head translation-invariant — the right
/// inductive bias for "is the target object anywhere in the frame".
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GlobalMaxPool {
    #[serde(skip)]
    cache: Option<(Vec<u32>, Vec<usize>)>, // (flat argmax per (n,c), input shape)
}

impl GlobalMaxPool {
    pub fn new() -> Self {
        GlobalMaxPool { cache: None }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "GlobalMaxPool expects NCHW");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let hw = h * w;
        let mut out = Tensor::zeros(&[n, c]);
        let mut arg = vec![0u32; n * c];
        #[allow(clippy::needless_range_loop)] // i indexes out, arg, and input planes
        for i in 0..n * c {
            let plane = &input.data()[i * hw..(i + 1) * hw];
            let (best_j, best) =
                plane
                    .iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bj, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bj, bv)
                        }
                    });
            out.data_mut()[i] = best;
            arg[i] = (i * hw + best_j) as u32;
        }
        if train {
            self.cache = Some((arg, input.shape().to_vec()));
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (arg, shape) = self
            .cache
            .as_ref()
            .expect("GlobalMaxPool::backward before forward(train=true)");
        let mut grad_in = Tensor::zeros(shape);
        for (g, &i) in grad_out.data().iter().zip(arg.iter()) {
            grad_in.data_mut()[i as usize] += g;
        }
        grad_in
    }
}

/// Flatten `(n, c, h, w)` to `(n, c*h*w)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    cache_shape: Option<Vec<usize>>,
}

impl Flatten {
    pub fn new() -> Self {
        Flatten { cache_shape: None }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        if train {
            self.cache_shape = Some(input.shape().to_vec());
        }
        input.clone().reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cache_shape
            .as_ref()
            .expect("Flatten::backward before forward(train=true)");
        grad_out.clone().reshape(shape)
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

/// Closed set of layer kinds (serde-friendly).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum LayerKind {
    Conv2d(Conv2d),
    MaxPool2d(MaxPool2d),
    AvgPool2d(AvgPool2d),
    GlobalMaxPool(GlobalMaxPool),
    BatchNorm2d(BatchNorm2d),
    Dense(Dense),
    Activation(Activation),
    Flatten(Flatten),
    Dropout(Dropout),
}

impl LayerKind {
    /// Run the layer forward. `train=true` caches activations for backward.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        match self {
            LayerKind::Conv2d(l) => l.forward(input, train),
            LayerKind::MaxPool2d(l) => l.forward(input, train),
            LayerKind::AvgPool2d(l) => l.forward(input, train),
            LayerKind::GlobalMaxPool(l) => l.forward(input, train),
            LayerKind::BatchNorm2d(l) => l.forward(input, train),
            LayerKind::Dense(l) => l.forward(input, train),
            LayerKind::Activation(l) => l.forward(input, train),
            LayerKind::Flatten(l) => l.forward(input, train),
            LayerKind::Dropout(l) => l.forward(input, train),
        }
    }

    /// Backpropagate; accumulates parameter gradients and returns the input
    /// gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self {
            LayerKind::Conv2d(l) => l.backward(grad_out),
            LayerKind::MaxPool2d(l) => l.backward(grad_out),
            LayerKind::AvgPool2d(l) => l.backward(grad_out),
            LayerKind::GlobalMaxPool(l) => l.backward(grad_out),
            LayerKind::BatchNorm2d(l) => l.backward(grad_out),
            LayerKind::Dense(l) => l.backward(grad_out),
            LayerKind::Activation(l) => l.backward(grad_out),
            LayerKind::Flatten(l) => l.backward(grad_out),
            LayerKind::Dropout(l) => l.backward(grad_out),
        }
    }

    /// Mutable access to the layer's learnable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            LayerKind::Conv2d(l) => vec![&mut l.weight, &mut l.bias],
            LayerKind::Dense(l) => vec![&mut l.weight, &mut l.bias],
            LayerKind::BatchNorm2d(l) => vec![&mut l.gamma, &mut l.beta],
            _ => vec![],
        }
    }

    /// Short human-readable layer name.
    pub fn name(&self) -> &'static str {
        match self {
            LayerKind::Conv2d(_) => "conv2d",
            LayerKind::MaxPool2d(_) => "maxpool2d",
            LayerKind::AvgPool2d(_) => "avgpool2d",
            LayerKind::GlobalMaxPool(_) => "global_maxpool",
            LayerKind::BatchNorm2d(_) => "batchnorm2d",
            LayerKind::Dense(_) => "dense",
            LayerKind::Activation(_) => "activation",
            LayerKind::Flatten(_) => "flatten",
            LayerKind::Dropout(_) => "dropout",
        }
    }
}

/// A feed-forward stack of layers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Sequential {
    pub layers: Vec<LayerKind>,
}

impl Sequential {
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Builder-style push.
    pub fn push(mut self, layer: LayerKind) -> Self {
        self.layers.push(layer);
        self
    }

    /// Forward pass over all layers.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x, train);
        }
        x
    }

    /// Backward pass; returns the gradient wrt the network input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// All learnable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zero every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar weights.
    pub fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Human-readable architecture summary: one `name(params)` per layer.
    pub fn summary(&mut self) -> String {
        let mut lines = Vec::with_capacity(self.layers.len());
        for l in self.layers.iter_mut() {
            let params: usize = l.params_mut().iter().map(|p| p.value.len()).sum();
            lines.push(format!("{}({})", l.name(), params));
        }
        format!(
            "{} [total {} params]",
            lines.join(" -> "),
            self.num_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut r = rng();
        let mut d = Dense::new(3, 2, &mut r);
        d.weight.value = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        d.bias.value = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    #[test]
    fn sequential_forward_runs_small_cnn() {
        let mut r = rng();
        let mut net = Sequential::new()
            .push(LayerKind::Conv2d(Conv2d::new(1, 4, 3, 1, 1, &mut r)))
            .push(LayerKind::Activation(Activation::new(Act::Relu)))
            .push(LayerKind::MaxPool2d(MaxPool2d::new(2, 2)))
            .push(LayerKind::Flatten(Flatten::new()))
            .push(LayerKind::Dense(Dense::new(4 * 4 * 4, 2, &mut r)));
        let x = Tensor::zeros(&[2, 1, 8, 8]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[2, 2]);
    }

    /// Finite-difference check of the full backward pass through a tiny CNN.
    #[test]
    fn gradient_check_small_network() {
        let mut r = rng();
        let mut net = Sequential::new()
            .push(LayerKind::Conv2d(Conv2d::new(1, 2, 3, 1, 1, &mut r)))
            .push(LayerKind::Activation(Activation::new(Act::Sigmoid)))
            .push(LayerKind::Flatten(Flatten::new()))
            .push(LayerKind::Dense(Dense::new(2 * 4 * 4, 1, &mut r)));
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            (0..16).map(|i| (i as f32) / 16.0 - 0.5).collect(),
        );

        // loss = 0.5 * y^2  =>  dL/dy = y
        let y = net.forward(&x, true);
        let grad = y.clone();
        net.zero_grad();
        net.backward(&grad);

        // Check a handful of weights by central differences.
        let eps = 1e-3f32;
        for (pi, wi) in [(0usize, 0usize), (0, 5), (2, 3), (3, 0)] {
            let analytic = {
                let params = net.params_mut();
                params[pi].grad.data()[wi]
            };
            let orig = {
                let params = net.params_mut();
                params[pi].value.data()[wi]
            };
            let eval = |v: f32, net: &mut Sequential| {
                {
                    let mut params = net.params_mut();
                    params[pi].value.data_mut()[wi] = v;
                }
                let y = net.forward(&x, false);
                0.5 * y.data()[0] * y.data()[0]
            };
            let lp = eval(orig + eps, &mut net);
            let lm = eval(orig - eps, &mut net);
            {
                let mut params = net.params_mut();
                params[pi].value.data_mut()[wi] = orig;
            }
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "param {} weight {}: analytic {} vs numeric {}",
                pi,
                wi,
                analytic,
                numeric
            );
        }
    }

    #[test]
    fn avgpool_forward_averages_windows() {
        let mut l = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 3.0, 5.0, 7.0, //
                1.0, 3.0, 5.0, 7.0, //
                2.0, 2.0, 0.0, 0.0, //
                2.0, 2.0, 8.0, 8.0,
            ],
        );
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[2.0, 6.0, 2.0, 4.0]);
    }

    #[test]
    fn avgpool_backward_distributes_uniformly() {
        let mut l = AvgPool2d::new(2, 2);
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let _ = l.forward(&x, true);
        let g = l.backward(&Tensor::full(&[1, 1, 2, 2], 4.0));
        // every input cell gets 4 * 1/4 = 1
        assert!(g.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        assert!((g.sum() - 16.0).abs() < 1e-5);
    }

    #[test]
    fn batchnorm_training_normalizes_per_channel() {
        let mut bn = BatchNorm2d::new(2);
        let mut data = Vec::new();
        // channel 0: values around 10; channel 1: around -5
        for b in 0..2 {
            for ch in 0..2 {
                for i in 0..4 {
                    let base = if ch == 0 { 10.0 } else { -5.0 };
                    data.push(base + (b * 4 + i) as f32 * 0.1);
                }
            }
        }
        let x = Tensor::from_vec(&[2, 2, 2, 2], data);
        let y = bn.forward(&x, true);
        // per-channel output mean ~0 and var ~1
        for ch in 0..2 {
            let vals: Vec<f32> = (0..2)
                .flat_map(|b| (0..4).map(move |i| (b, i)))
                .map(|(b, i)| y.data()[(b * 2 + ch) * 4 + i])
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {}", mean);
            assert!((var - 1.0).abs() < 0.05, "var {}", var);
        }
        // running stats moved toward the batch stats
        assert!(bn.running_mean.data()[0] > 0.5);
        assert!(bn.running_mean.data()[1] < -0.2);
    }

    #[test]
    fn batchnorm_inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // several training passes to populate the running stats
        let x = Tensor::from_vec(&[4, 1, 1, 2], (0..8).map(|i| i as f32).collect());
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y_train_stats = bn.forward(&x, false);
        // inference output should be roughly normalized too
        let mean = y_train_stats.mean();
        assert!(mean.abs() < 0.2, "mean {}", mean);
    }

    #[test]
    fn batchnorm_gradcheck_small() {
        // finite-difference check of BatchNorm through a scalar loss
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(&[2, 1, 1, 2], vec![0.3, -0.2, 0.9, 0.1]);
        let loss_of = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            let y = bn.forward(x, true);
            0.5 * y.sq_norm()
        };
        let y = bn.forward(&x, true);
        bn.gamma.zero_grad();
        bn.beta.zero_grad();
        let gin = bn.backward(&y); // dL/dy = y for L = 0.5*|y|^2
                                   // numeric check for one input coordinate
        let eps = 1e-3;
        for idx in [0usize, 3] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = loss_of(&mut bn, &xp);
            let lm = loss_of(&mut bn, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gin.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "idx {}: analytic {} numeric {}",
                idx,
                analytic,
                numeric
            );
        }
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::from_vec(&[8], (0..8).map(|i| i as f32).collect());
        let y = d.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn dropout_training_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::full(&[1000], 1.0);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept: Vec<f32> = y.data().iter().copied().filter(|&v| v != 0.0).collect();
        // roughly half dropped
        assert!((300..700).contains(&zeros), "zeros {}", zeros);
        // survivors are rescaled by 1/(1-p) = 2
        assert!(kept.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        // expectation is preserved approximately
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.15, "mean {}", mean);
    }

    #[test]
    fn dropout_backward_routes_only_kept_units() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::full(&[100], 1.0);
        let y = d.forward(&x, true);
        let grad = d.backward(&Tensor::full(&[100], 1.0));
        for (g, &v) in grad.data().iter().zip(y.data().iter()) {
            if v == 0.0 {
                assert_eq!(*g, 0.0);
            } else {
                assert!((g - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn dropout_masks_differ_across_steps() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::full(&[64], 1.0);
        let a = d.forward(&x, true);
        let b = d.forward(&x, true);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn summary_lists_layers_and_params() {
        let mut r = rng();
        let mut net = Sequential::new()
            .push(LayerKind::Conv2d(Conv2d::new(1, 2, 3, 1, 1, &mut r)))
            .push(LayerKind::Activation(Activation::new(Act::Relu)))
            .push(LayerKind::Flatten(Flatten::new()))
            .push(LayerKind::Dense(Dense::new(2 * 4 * 4, 1, &mut r)));
        let s = net.summary();
        assert!(s.contains("conv2d(20)"), "{}", s); // 2*1*3*3 + 2 bias
        assert!(s.contains("dense(33)"), "{}", s); // 32 + 1 bias
        assert!(s.contains("total 53 params"), "{}", s);
    }

    #[test]
    fn serde_roundtrip_preserves_weights() {
        let mut r = rng();
        let mut net = Sequential::new()
            .push(LayerKind::Conv2d(Conv2d::new(1, 2, 3, 1, 0, &mut r)))
            .push(LayerKind::Flatten(Flatten::new()))
            .push(LayerKind::Dense(Dense::new(2 * 2 * 2, 1, &mut r)));
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as f32 * 0.1).collect());
        let y1 = net.forward(&x, false);
        let json = serde_json::to_string(&net).unwrap();
        let mut net2: Sequential = serde_json::from_str(&json).unwrap();
        let y2 = net2.forward(&x, false);
        assert_eq!(y1.data(), y2.data());
    }
}
