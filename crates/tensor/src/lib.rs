//! `ffsva-tensor` — a minimal, pure-Rust CNN inference and training engine.
//!
//! FFS-VA trains a *stream-specialized network model* (SNM, a 3-layer CNN)
//! for every camera, and runs small detection networks as cascade filters.
//! The paper builds on Darknet; this crate is the equivalent substrate:
//! NCHW tensors, im2col+GEMM convolution, max pooling, dense layers,
//! activations, full backpropagation, and SGD-with-momentum training —
//! enough to train and serve the specialized models from scratch.
//!
//! ```
//! use ffsva_tensor::prelude::*;
//! use ffsva_tensor::layers::{Conv2d, Activation, MaxPool2d, Flatten, Dense};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new()
//!     .push(LayerKind::Conv2d(Conv2d::new(1, 4, 3, 1, 1, &mut rng)))
//!     .push(LayerKind::Activation(Activation::new(Act::Relu)))
//!     .push(LayerKind::MaxPool2d(MaxPool2d::new(2, 2)))
//!     .push(LayerKind::Flatten(Flatten::new()))
//!     .push(LayerKind::Dense(Dense::new(4 * 8 * 8, 1, &mut rng)));
//! let x = Tensor::zeros(&[1, 1, 16, 16]);
//! let logit = net.forward(&x, false);
//! assert_eq!(logit.shape(), &[1, 1]);
//! ```

pub mod adam;
pub mod init;
pub mod layers;
pub mod ops;
pub mod quant;
pub mod simd;
pub mod tensor;
pub mod train;

pub use adam::Adam;
pub use layers::{
    Act, Activation, AvgPool2d, BatchNorm2d, Conv2d, Dense, Dropout, Flatten, GlobalMaxPool,
    LayerKind, MaxPool2d, Param, Sequential,
};
pub use ops::{ConvGeom, ConvScratch};
pub use quant::{dot_i8, gemm_i8_into, im2col_i8_into, quantize_symmetric_i8_into};
pub use simd::simd_active;
pub use tensor::Tensor;
pub use train::{Dataset, Sgd, TrainConfig};

/// Common imports for building and training networks.
pub mod prelude {
    pub use crate::layers::{
        Act, Activation, Conv2d, Dense, Flatten, LayerKind, MaxPool2d, Sequential,
    };
    pub use crate::ops::ConvGeom;
    pub use crate::tensor::Tensor;
    pub use crate::train::{Dataset, Sgd, TrainConfig};
}
