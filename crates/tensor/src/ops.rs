//! Low-level kernels: matrix multiply, im2col/col2im, pooling, activations.
//!
//! Convolution is implemented as im2col followed by a matrix multiply — the
//! classic lowering used by Darknet and cuDNN's GEMM algorithm. The matmul is
//! parallelized over output rows with rayon.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// `C = A (m×k) * B (k×n)`, row-major, parallel over rows of `A`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);

    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let arow = &ad[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in row.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    });
    Tensor::from_vec(&[m, n], out)
}

/// `C = Aᵀ (k×m)ᵀ * B (k×n)` without materializing the transpose.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for p in 0..k {
            let av = ad[p * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in row.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    });
    Tensor::from_vec(&[m, n], out)
}

/// `C = A (m×k) * Bᵀ (n×k)ᵀ` without materializing the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in row.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    });
    Tensor::from_vec(&[m, n], out)
}

/// Geometry of a conv/pool window sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    pub in_h: usize,
    pub in_w: usize,
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvGeom {
    /// Output height for this geometry.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }
    /// Output width for this geometry.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }
}

/// Lower one image `(c, h, w)` into a matrix of shape
/// `(c*kernel*kernel, out_h*out_w)` where each column is a receptive field.
pub fn im2col(input: &[f32], c: usize, geom: ConvGeom) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let rows = c * k * k;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    for ch in 0..c {
        let plane = &input[ch * geom.in_h * geom.in_w..(ch + 1) * geom.in_h * geom.in_w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        out[base + oy * ow + ox] = plane[iy * geom.in_w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[rows, cols], out)
}

/// Scatter-add the columns of a `(c*k*k, out_h*out_w)` matrix back into an
/// image buffer of shape `(c, in_h, in_w)` — the adjoint of [`im2col`].
pub fn col2im(cols_t: &Tensor, c: usize, geom: ConvGeom) -> Vec<f32> {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = oh * ow;
    let mut out = vec![0.0f32; c * geom.in_h * geom.in_w];
    let data = cols_t.data();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        out[(ch * geom.in_h + iy) * geom.in_w + ix as usize] +=
                            data[base + oy * ow + ox];
                    }
                }
            }
        }
    }
    out
}

/// Naive direct convolution used as a correctness reference in tests.
/// Input `(n, c, h, w)`, weights `(oc, c, k, k)`, bias `(oc)`.
pub fn conv2d_naive(input: &Tensor, weight: &Tensor, bias: &Tensor, geom: ConvGeom) -> Tensor {
    let (n, c) = (input.shape()[0], input.shape()[1]);
    let oc = weight.shape()[0];
    let k = geom.kernel;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    for b in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.data()[o];
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                                let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= geom.in_h as isize
                                    || ix >= geom.in_w as isize
                                {
                                    continue;
                                }
                                acc += input.at4(b, ci, iy as usize, ix as usize)
                                    * weight.at4(o, ci, ky, kx);
                            }
                        }
                    }
                    *out.at4_mut(b, o, oy, ox) = acc;
                }
            }
        }
    }
    out
}

/// im2col + GEMM convolution. Input `(n, c, h, w)`, weights `(oc, c, k, k)`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, geom: ConvGeom) -> Tensor {
    assert_eq!(input.rank(), 4);
    assert_eq!(weight.rank(), 4);
    let (n, c) = (input.shape()[0], input.shape()[1]);
    assert_eq!(c, weight.shape()[1], "conv2d channel mismatch");
    assert_eq!(input.shape()[2], geom.in_h);
    assert_eq!(input.shape()[3], geom.in_w);
    let oc = weight.shape()[0];
    let k = geom.kernel;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let w_mat = weight.clone().reshape(&[oc, c * k * k]);

    let plane = c * geom.in_h * geom.in_w;
    let out_plane = oc * oh * ow;
    let mut out = vec![0.0f32; n * out_plane];
    let in_data = input.data();
    out.par_chunks_mut(out_plane)
        .enumerate()
        .for_each(|(b, out_img)| {
            let cols = im2col(&in_data[b * plane..(b + 1) * plane], c, geom);
            let res = matmul(&w_mat, &cols); // (oc, oh*ow)
            for o in 0..oc {
                let bo = bias.data()[o];
                let src = &res.data()[o * oh * ow..(o + 1) * oh * ow];
                let dst = &mut out_img[o * oh * ow..(o + 1) * oh * ow];
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = s + bo;
                }
            }
        });
    Tensor::from_vec(&[n, oc, oh, ow], out)
}

/// Max pooling over `(n, c, h, w)`. Returns the pooled output together with
/// the flat argmax index of each window (for the backward pass).
pub fn maxpool2d(input: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<u32>) {
    assert_eq!(input.rank(), 4);
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0u32; n * c * oh * ow];
    let mut idx = 0usize;
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0u32;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            let v = input.at4(b, ch, iy, ix);
                            if v > best {
                                best = v;
                                best_i = (((b * c + ch) * h + iy) * w + ix) as u32;
                            }
                        }
                    }
                    *out.at4_mut(b, ch, oy, ox) = best;
                    arg[idx] = best_i;
                    idx += 1;
                }
            }
        }
    }
    (out, arg)
}

/// Backward of max pooling: route each output gradient to its argmax source.
pub fn maxpool2d_backward(grad_out: &Tensor, arg: &[u32], input_shape: &[usize]) -> Tensor {
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    for (g, &i) in grad_out.data().iter().zip(arg.iter()) {
        gi[i as usize] += g;
    }
    grad_in
}

/// Global average pooling `(n, c, h, w) -> (n, c)`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 4);
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let hw = (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    for b in 0..n {
        for ch in 0..c {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += input.at4(b, ch, y, x);
                }
            }
            out.data_mut()[b * c + ch] = acc / hw;
        }
    }
    out
}

/// Element-wise ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| v.max(0.0)).collect();
    Tensor::from_vec(x.shape(), data)
}

/// Element-wise leaky ReLU with slope `alpha` on the negative side.
pub fn leaky_relu(x: &Tensor, alpha: f32) -> Tensor {
    let data = x
        .data()
        .iter()
        .map(|&v| if v > 0.0 { v } else { alpha * v })
        .collect();
    Tensor::from_vec(x.shape(), data)
}

/// Element-wise logistic sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| sigmoid_scalar(v)).collect();
    Tensor::from_vec(x.shape(), data)
}

/// Scalar logistic sigmoid.
#[inline]
pub fn sigmoid_scalar(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Row-wise softmax of a rank-2 tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 2);
    let cols = x.shape()[1];
    let mut out = Vec::with_capacity(x.len());
    for row in x.data().chunks(cols) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let s: f32 = exps.iter().sum();
        out.extend(exps.iter().map(|e| e / s));
    }
    Tensor::from_vec(x.shape(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        // aT is 2x3
        let c = matmul_tn(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        // aT*b row0 = [1,3,5]·cols of b
        assert!(close(c.at2(0, 0), 1.0 * 1.0 + 3.0 * 0.0 + 5.0 * 1.0));
        assert!(close(c.at2(1, 1), 2.0 * 0.0 + 4.0 * 1.0 + 6.0 * 1.0));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[2, 3], vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
        let c = matmul_nt(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert!(close(c.at2(0, 0), 1.0 + 2.0));
        assert!(close(c.at2(0, 1), 2.0 + 3.0));
    }

    #[test]
    fn conv_geom_output_dims() {
        let g = ConvGeom {
            in_h: 5,
            in_w: 5,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(g.out_h(), 5);
        assert_eq!(g.out_w(), 5);
        let g2 = ConvGeom {
            in_h: 4,
            in_w: 6,
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        assert_eq!(g2.out_h(), 2);
        assert_eq!(g2.out_w(), 3);
    }

    #[test]
    fn conv2d_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let input = Tensor::from_vec(
            &[2, 3, 6, 7],
            (0..2 * 3 * 6 * 7)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        );
        let weight = Tensor::from_vec(
            &[4, 3, 3, 3],
            (0..4 * 3 * 9).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let bias = Tensor::from_vec(&[4], (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let geom = ConvGeom {
            in_h: 6,
            in_w: 7,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let fast = conv2d(&input, &weight, &bias, geom);
        let slow = conv2d_naive(&input, &weight, &bias, geom);
        assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!(close(*a, *b), "{} vs {}", a, b);
        }
    }

    #[test]
    fn conv2d_stride2_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let input = Tensor::from_vec(
            &[1, 2, 8, 8],
            (0..2 * 64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let weight = Tensor::from_vec(
            &[3, 2, 3, 3],
            (0..3 * 2 * 9).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let bias = Tensor::zeros(&[3]);
        let geom = ConvGeom {
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 2,
            pad: 0,
        };
        let fast = conv2d(&input, &weight, &bias, geom);
        let slow = conv2d_naive(&input, &weight, &bias, geom);
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn im2col_col2im_adjoint_shape() {
        // col2im(im2col(x)) multiplies each pixel by the number of windows
        // covering it; with kernel=1 stride=1 it is the identity.
        let geom = ConvGeom {
            in_h: 3,
            in_w: 3,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let input: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let cols = im2col(&input, 1, geom);
        let back = col2im(&cols, 1, geom);
        assert_eq!(back, input);
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let (out, arg) = maxpool2d(&input, 2, 2);
        assert_eq!(out.data(), &[4.0, 8.0, 12.0, 16.0]);
        let grad_out = Tensor::full(&[1, 1, 2, 2], 1.0);
        let grad_in = maxpool2d_backward(&grad_out, &arg, &[1, 1, 4, 4]);
        // exactly one gradient per window, at the max location
        assert_eq!(grad_in.sum(), 4.0);
        assert_eq!(grad_in.at4(0, 0, 1, 1), 1.0);
        assert_eq!(grad_in.at4(0, 0, 3, 3), 1.0);
    }

    #[test]
    fn activations() {
        let x = Tensor::from_vec(&[3], vec![-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        assert_eq!(leaky_relu(&x, 0.1).data(), &[-0.1, 0.0, 2.0]);
        let s = sigmoid(&x);
        assert!(close(s.data()[1], 0.5));
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&x);
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!(close(sum, 1.0));
        }
        // monotone in input
        assert!(s.at2(0, 2) > s.at2(0, 1));
    }

    #[test]
    fn global_avg_pool_means() {
        let input = Tensor::from_vec(
            &[1, 2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        );
        let out = global_avg_pool(&input);
        assert_eq!(out.data(), &[2.5, 10.0]);
    }
}
