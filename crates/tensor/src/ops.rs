//! Low-level kernels: matrix multiply, im2col/col2im, pooling, activations.
//!
//! Convolution is implemented as im2col followed by a matrix multiply — the
//! classic lowering used by Darknet and cuDNN's GEMM algorithm. The matmul is
//! parallelized over output rows with rayon.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Column-tile width of the blocked matmul: a 1 KB f32 output tile stays
/// L1-resident while the `k` loop streams over `B`.
const MM_COL_TILE: usize = 256;
/// k-block length: the matching `A` segment (256 B) and the `B` row segments
/// it touches (`MM_K_TILE` rows × 1 KB tile) fit comfortably in L1.
const MM_K_TILE: usize = 64;

/// Blocked GEMM inner kernel shared by [`matmul`]/[`matmul_into`] and the
/// batched convolution: `out (m×n) = A (m×k) · B (k×n)`, row-major, parallel
/// over rows of `A`, column- and k-tiled for cache residency.
///
/// Each output element accumulates in ascending-`p` order — the same order
/// as the unblocked kernel — so results are bit-identical to
/// [`matmul_naive`] up to the zero-skip below.
///
/// Finite-weights invariant: the `av == 0.0` shortcut treats `0 · x` as `0`,
/// which is only true for finite `x`. Callers must guarantee `B` is finite
/// wherever the matching `A` entry is zero. The inference hot path satisfies
/// this (trained weights and im2col activations are finite); the
/// training-gradient path uses [`matmul_tn`], which does *not* skip, so
/// NaN/Inf gradients propagate instead of being masked by sparse operands.
fn gemm_into(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut Vec<f32>) {
    gemm_into_with(ad, m, k, bd, n, out, crate::simd::axpy)
}

/// [`gemm_into`] pinned to the scalar inner kernel regardless of the
/// `simd` feature or CPU — the conformance reference the SIMD path is
/// tested against (see [`matmul_into_scalar`]).
fn gemm_into_scalar(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut Vec<f32>) {
    gemm_into_with(ad, m, k, bd, n, out, crate::simd::axpy_scalar)
}

/// Shared blocking/zero-skip skeleton of the GEMM, generic over the
/// `out[j] += a·b[j]` inner kernel so the dispatched and scalar variants
/// are the same code path up to that one loop.
#[inline]
fn gemm_into_with<F>(
    ad: &[f32],
    m: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut Vec<f32>,
    axpy: F,
) where
    F: Fn(f32, &[f32], &mut [f32]) + Sync,
{
    debug_assert_eq!(ad.len(), m * k);
    debug_assert_eq!(bd.len(), k * n);
    out.clear();
    out.resize(m * n, 0.0);
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let arow = &ad[i * k..(i + 1) * k];
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + MM_COL_TILE).min(n);
            let tile = &mut row[j0..j1];
            let mut p0 = 0;
            while p0 < k {
                let p1 = (p0 + MM_K_TILE).min(k);
                for p in p0..p1 {
                    let av = arow[p];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[p * n + j0..p * n + j1];
                    axpy(av, brow, tile);
                }
                p0 = p1;
            }
            j0 = j1;
        }
    });
}

/// `C = A (m×k) * B (k×n)`, row-major, parallel over rows of `A`.
///
/// Blocked for cache residency; see [`matmul_into`] for the buffer-reusing
/// variant and the finite-weights invariant of the zero-skip.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Vec::new();
    matmul_into(a, b, &mut out);
    Tensor::from_vec(&[a.shape()[0], b.shape()[1]], out)
}

/// [`matmul`] writing into a caller-owned buffer (`out` is resized to
/// `m·n`), so steady-state callers allocate nothing per invocation.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Vec<f32>) {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);
    gemm_into(a.data(), m, k, b.data(), n, out);
}

/// [`matmul_into`] forced onto the scalar inner kernel — always available,
/// independent of the `simd` feature and CPU. This is the reference the
/// SIMD conformance proptests and the `kernel.scalar_matmul_gflops` bench
/// series compare against (on a scalar build it is exactly [`matmul_into`]).
pub fn matmul_into_scalar(a: &Tensor, b: &Tensor, out: &mut Vec<f32>) {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);
    gemm_into_scalar(a.data(), m, k, b.data(), n, out);
}

/// Unblocked, unskipped reference kernel — the correctness oracle for the
/// blocked [`matmul`]/[`matmul_into`] in equivalence tests. IEEE semantics
/// throughout: `0 · NaN = NaN`.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_naive inner dims");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            for j in 0..n {
                out[i * n + j] += av * bd[p * n + j];
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// `C = Aᵀ (k×m)ᵀ * B (k×n)` without materializing the transpose.
///
/// This is the training-gradient kernel (`Conv2d::backward` dcols,
/// `Dense::backward` dW), so it deliberately has *no* zero-skip: a NaN/Inf
/// weight or gradient must propagate (`0 · NaN = NaN`) and surface training
/// divergence instead of hiding behind sparse activations.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_tn inner dims");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for p in 0..k {
            let av = ad[p * m + i];
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in row.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    });
    Tensor::from_vec(&[m, n], out)
}

/// `C = A (m×k) * Bᵀ (n×k)ᵀ` without materializing the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_nt inner dims");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in row.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    });
    Tensor::from_vec(&[m, n], out)
}

/// Geometry of a conv/pool window sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    pub in_h: usize,
    pub in_w: usize,
    pub kernel: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvGeom {
    /// Validated constructor: rejects `stride == 0`, `kernel == 0`, and
    /// kernels larger than the padded input — the cases where the raw
    /// `out_h`/`out_w` arithmetic would divide by zero or underflow `usize`
    /// (an inscrutable overflow panic in debug, a wrapped multi-gigabyte
    /// allocation in release).
    pub fn new(
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<ConvGeom, String> {
        if stride == 0 {
            return Err("ConvGeom: stride must be >= 1".into());
        }
        if kernel == 0 {
            return Err("ConvGeom: kernel must be >= 1".into());
        }
        let (span_h, span_w) = (in_h + 2 * pad, in_w + 2 * pad);
        if kernel > span_h || kernel > span_w {
            return Err(format!(
                "ConvGeom: kernel {} exceeds padded input {}x{} \
                 ({}x{} + {} padding on each side)",
                kernel, span_h, span_w, in_h, in_w, pad
            ));
        }
        Ok(ConvGeom {
            in_h,
            in_w,
            kernel,
            stride,
            pad,
        })
    }

    fn checked_out_dim(&self, in_d: usize, axis: &str) -> usize {
        let span = in_d + 2 * self.pad;
        assert!(self.stride >= 1, "ConvGeom: stride must be >= 1");
        assert!(
            self.kernel >= 1 && self.kernel <= span,
            "ConvGeom: kernel {} exceeds padded input {} {} ({} + {} padding on each side)",
            self.kernel,
            axis,
            span,
            in_d,
            self.pad
        );
        (span - self.kernel) / self.stride + 1
    }

    /// Output height for this geometry.
    ///
    /// # Panics
    /// Panics with a descriptive message when the kernel exceeds the padded
    /// input or the stride is zero (use [`ConvGeom::new`] to get a
    /// `Result` instead).
    pub fn out_h(&self) -> usize {
        self.checked_out_dim(self.in_h, "height")
    }
    /// Output width for this geometry.
    ///
    /// # Panics
    /// Same conditions as [`ConvGeom::out_h`].
    pub fn out_w(&self) -> usize {
        self.checked_out_dim(self.in_w, "width")
    }
}

/// Lower one image `(c, h, w)` into a matrix of shape
/// `(c*kernel*kernel, out_h*out_w)` where each column is a receptive field.
pub fn im2col(input: &[f32], c: usize, geom: ConvGeom) -> Tensor {
    let mut out = Vec::new();
    im2col_into(input, c, geom, &mut out);
    Tensor::from_vec(
        &[c * geom.kernel * geom.kernel, geom.out_h() * geom.out_w()],
        out,
    )
}

/// [`im2col`] into a caller-owned buffer (resized to `c·k²·oh·ow`), so the
/// per-frame hot path reuses one lowering buffer instead of allocating.
pub fn im2col_into(input: &[f32], c: usize, geom: ConvGeom, out: &mut Vec<f32>) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let rows = c * k * k;
    let cols = oh * ow;
    out.clear();
    out.resize(rows * cols, 0.0);
    for ch in 0..c {
        let plane = &input[ch * geom.in_h * geom.in_w..(ch + 1) * geom.in_h * geom.in_w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                im2col_row(plane, geom, ky, kx, &mut out[row * cols..(row + 1) * cols]);
            }
        }
    }
}

/// Fill one im2col row — the sweep of a fixed `(ky, kx)` tap over every
/// output pixel of one channel plane. `dst` must be zeroed (padding taps
/// stay zero) and `out_h·out_w` long.
///
/// im2col is pure data movement, so the span fast path selected under the
/// `simd` feature is *bit-identical* to the per-element sweep — it copies
/// the same elements to the same slots, just without per-element bounds
/// checks (and via `copy_from_slice`/memcpy when the stride is 1).
#[inline]
fn im2col_row(plane: &[f32], geom: ConvGeom, ky: usize, kx: usize, dst: &mut [f32]) {
    // cfg! (not #[cfg]) so both variants always compile: the scalar sweep
    // stays warning-clean and available as the conformance reference.
    if cfg!(feature = "simd") {
        im2col_row_span(plane, geom, ky, kx, dst)
    } else {
        im2col_row_sweep(plane, geom, ky, kx, dst)
    }
}

/// Per-element reference sweep (the pre-vectorization kernel).
#[inline]
fn im2col_row_sweep(plane: &[f32], geom: ConvGeom, ky: usize, kx: usize, dst: &mut [f32]) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    for oy in 0..oh {
        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
        if iy < 0 || iy >= geom.in_h as isize {
            continue;
        }
        let iy = iy as usize;
        for ox in 0..ow {
            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
            if ix < 0 || ix >= geom.in_w as isize {
                continue;
            }
            dst[oy * ow + ox] = plane[iy * geom.in_w + ix as usize];
        }
    }
}

/// Span fast path: hoist the in-bounds `ox` interval out of the inner loop,
/// then bulk-copy (stride 1) or walk a fixed stride with no bounds branch.
#[inline]
fn im2col_row_span(plane: &[f32], geom: ConvGeom, ky: usize, kx: usize, dst: &mut [f32]) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let stride = geom.stride;
    // Valid ox satisfy 0 <= ox·stride + kx − pad < in_w.
    let ox0 = if geom.pad > kx {
        ((geom.pad - kx) + stride - 1) / stride
    } else {
        0
    };
    let limit = geom.in_w + geom.pad; // ix < in_w  ⇔  ox·stride + kx < limit
    let ox1 = if limit > kx {
        (((limit - kx - 1) / stride) + 1).min(ow)
    } else {
        0
    };
    if ox0 >= ox1 {
        return; // this tap never lands in-bounds horizontally
    }
    let span = ox1 - ox0;
    let ix0 = ox0 * stride + kx - geom.pad;
    for oy in 0..oh {
        let iy = (oy * stride + ky) as isize - geom.pad as isize;
        if iy < 0 || iy >= geom.in_h as isize {
            continue;
        }
        let src = &plane[iy as usize * geom.in_w..(iy as usize + 1) * geom.in_w];
        let drow = &mut dst[oy * ow + ox0..oy * ow + ox1];
        if stride == 1 {
            drow.copy_from_slice(&src[ix0..ix0 + span]);
        } else {
            let mut ix = ix0;
            for d in drow.iter_mut() {
                *d = src[ix];
                ix += stride;
            }
        }
    }
}

/// Scatter-add the columns of a `(c*k*k, out_h*out_w)` matrix back into an
/// image buffer of shape `(c, in_h, in_w)` — the adjoint of [`im2col`].
pub fn col2im(cols_t: &Tensor, c: usize, geom: ConvGeom) -> Vec<f32> {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = oh * ow;
    let mut out = vec![0.0f32; c * geom.in_h * geom.in_w];
    let data = cols_t.data();
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        out[(ch * geom.in_h + iy) * geom.in_w + ix as usize] +=
                            data[base + oy * ow + ox];
                    }
                }
            }
        }
    }
    out
}

/// Naive direct convolution used as a correctness reference in tests.
/// Input `(n, c, h, w)`, weights `(oc, c, k, k)`, bias `(oc)`.
pub fn conv2d_naive(input: &Tensor, weight: &Tensor, bias: &Tensor, geom: ConvGeom) -> Tensor {
    let (n, c) = (input.shape()[0], input.shape()[1]);
    let oc = weight.shape()[0];
    let k = geom.kernel;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    for b in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.data()[o];
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                                let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= geom.in_h as isize
                                    || ix >= geom.in_w as isize
                                {
                                    continue;
                                }
                                acc += input.at4(b, ci, iy as usize, ix as usize)
                                    * weight.at4(o, ci, ky, kx);
                            }
                        }
                    }
                    *out.at4_mut(b, o, oy, ox) = acc;
                }
            }
        }
    }
    out
}

/// Reusable buffers for [`conv2d_scratch`]: the batched im2col matrix and
/// the raw GEMM output. Owned per layer (or per worker) and recycled across
/// forward passes; serde-skipped where embedded in serialized layers.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    /// Batched im2col matrix, `(c·k², n·oh·ow)` row-major.
    pub cols: Vec<f32>,
    /// GEMM output, `(oc, n·oh·ow)` row-major, before the bias/NCHW scatter.
    pub gemm: Vec<f32>,
}

/// im2col + GEMM convolution. Input `(n, c, h, w)`, weights `(oc, c, k, k)`.
///
/// Thin wrapper over [`conv2d_scratch`] with throwaway buffers; hot paths
/// hold a [`ConvScratch`] and call the scratch variant directly.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, geom: ConvGeom) -> Tensor {
    let mut scratch = ConvScratch::default();
    conv2d_scratch(input, weight, bias, geom, &mut scratch)
}

/// Batched im2col + GEMM convolution with caller-owned scratch.
///
/// The whole batch is lowered into ONE `(c·k², n·oh·ow)` matrix (columns
/// grouped by image) and multiplied by the `(oc, c·k²)` weight matrix in ONE
/// blocked GEMM — one im2col and one GEMM per call regardless of batch
/// size — then scattered back to NCHW with the bias added. Per output
/// element the accumulation order over `c·k²` is identical to the
/// per-image formulation, so batched and single-frame forwards are
/// bit-identical.
pub fn conv2d_scratch(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geom: ConvGeom,
    scratch: &mut ConvScratch,
) -> Tensor {
    assert_eq!(input.rank(), 4);
    assert_eq!(weight.rank(), 4);
    let (n, c) = (input.shape()[0], input.shape()[1]);
    assert_eq!(c, weight.shape()[1], "conv2d channel mismatch");
    assert_eq!(input.shape()[2], geom.in_h);
    assert_eq!(input.shape()[3], geom.in_w);
    let oc = weight.shape()[0];
    let k = geom.kernel;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let img_cols = oh * ow;
    let total_cols = n * img_cols;
    let rows = c * k * k;
    let plane = c * geom.in_h * geom.in_w;
    let in_data = input.data();

    // Batched im2col: each rayon task owns one (ch, ky, kx) tap row and
    // sweeps it across every image's column block.
    scratch.cols.clear();
    scratch.cols.resize(rows * total_cols, 0.0);
    scratch
        .cols
        .par_chunks_mut(total_cols)
        .enumerate()
        .for_each(|(row, dst)| {
            let ch = row / (k * k);
            let rem = row % (k * k);
            let (ky, kx) = (rem / k, rem % k);
            let plane_off = ch * geom.in_h * geom.in_w;
            for b in 0..n {
                let img_plane =
                    &in_data[b * plane + plane_off..b * plane + plane_off + geom.in_h * geom.in_w];
                im2col_row(
                    img_plane,
                    geom,
                    ky,
                    kx,
                    &mut dst[b * img_cols..(b + 1) * img_cols],
                );
            }
        });

    // ONE GEMM for the whole batch: (oc, c·k²) · (c·k², n·oh·ow).
    gemm_into(
        weight.data(),
        oc,
        rows,
        &scratch.cols,
        total_cols,
        &mut scratch.gemm,
    );

    // Scatter (oc, n·oh·ow) back to NCHW and add the bias.
    let mut out = vec![0.0f32; n * oc * img_cols];
    let gemm = &scratch.gemm;
    let bias_d = bias.data();
    out.par_chunks_mut(oc * img_cols)
        .enumerate()
        .for_each(|(b, img)| {
            for o in 0..oc {
                let bo = bias_d[o];
                let src = &gemm[o * total_cols + b * img_cols..o * total_cols + (b + 1) * img_cols];
                let dst = &mut img[o * img_cols..(o + 1) * img_cols];
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = s + bo;
                }
            }
        });
    Tensor::from_vec(&[n, oc, oh, ow], out)
}

/// Max pooling over `(n, c, h, w)`. Returns the pooled output together with
/// the flat argmax index of each window (for the backward pass).
pub fn maxpool2d(input: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<u32>) {
    assert_eq!(input.rank(), 4);
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0u32; n * c * oh * ow];
    let mut idx = 0usize;
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0u32;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            let v = input.at4(b, ch, iy, ix);
                            if v > best {
                                best = v;
                                best_i = (((b * c + ch) * h + iy) * w + ix) as u32;
                            }
                        }
                    }
                    *out.at4_mut(b, ch, oy, ox) = best;
                    arg[idx] = best_i;
                    idx += 1;
                }
            }
        }
    }
    (out, arg)
}

/// Backward of max pooling: route each output gradient to its argmax source.
pub fn maxpool2d_backward(grad_out: &Tensor, arg: &[u32], input_shape: &[usize]) -> Tensor {
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    for (g, &i) in grad_out.data().iter().zip(arg.iter()) {
        gi[i as usize] += g;
    }
    grad_in
}

/// Global average pooling `(n, c, h, w) -> (n, c)`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 4);
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let hw = (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    for b in 0..n {
        for ch in 0..c {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += input.at4(b, ch, y, x);
                }
            }
            out.data_mut()[b * c + ch] = acc / hw;
        }
    }
    out
}

/// Element-wise ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| v.max(0.0)).collect();
    Tensor::from_vec(x.shape(), data)
}

/// Element-wise leaky ReLU with slope `alpha` on the negative side.
pub fn leaky_relu(x: &Tensor, alpha: f32) -> Tensor {
    let data = x
        .data()
        .iter()
        .map(|&v| if v > 0.0 { v } else { alpha * v })
        .collect();
    Tensor::from_vec(x.shape(), data)
}

/// Element-wise logistic sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| sigmoid_scalar(v)).collect();
    Tensor::from_vec(x.shape(), data)
}

/// Scalar logistic sigmoid.
#[inline]
pub fn sigmoid_scalar(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Row-wise softmax of a rank-2 tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 2);
    let cols = x.shape()[1];
    let mut out = Vec::with_capacity(x.len());
    for row in x.data().chunks(cols) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let s: f32 = exps.iter().sum();
        out.extend(exps.iter().map(|e| e / s));
    }
    Tensor::from_vec(x.shape(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        // aT is 2x3
        let c = matmul_tn(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        // aT*b row0 = [1,3,5]·cols of b
        assert!(close(c.at2(0, 0), 1.0 * 1.0 + 3.0 * 0.0 + 5.0 * 1.0));
        assert!(close(c.at2(1, 1), 2.0 * 0.0 + 4.0 * 1.0 + 6.0 * 1.0));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[2, 3], vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
        let c = matmul_nt(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert!(close(c.at2(0, 0), 1.0 + 2.0));
        assert!(close(c.at2(0, 1), 2.0 + 3.0));
    }

    #[test]
    fn matmul_blocked_matches_naive_past_tile_boundaries() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        // n and k straddle MM_COL_TILE / MM_K_TILE so every tile edge runs
        let (m, k, n) = (5, 70, 300);
        let a = Tensor::from_vec(
            &[m, k],
            (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let b = Tensor::from_vec(
            &[k, n],
            (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-4, "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_into_reuses_buffer_across_shapes() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let mut buf = vec![99.0f32; 17]; // stale, wrongly sized
        matmul_into(&a, &b, &mut buf);
        assert_eq!(buf, vec![19.0, 22.0, 43.0, 50.0]);
        // shrink to a smaller product: stale tail must not leak through
        let a1 = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let b1 = Tensor::from_vec(&[2, 1], vec![2.0, 3.0]);
        matmul_into(&a1, &b1, &mut buf);
        assert_eq!(buf, vec![5.0]);
    }

    /// 0 · NaN must be NaN on the training-gradient path: a NaN weight
    /// behind a zero activation has to surface, not vanish (the old
    /// zero-skip silently masked diverged weights).
    #[test]
    fn matmul_tn_propagates_nan_behind_zero() {
        // aT row picks a[.][i]; put a zero in A against a NaN in B
        let a = Tensor::from_vec(&[2, 1], vec![0.0, 1.0]);
        let b = Tensor::from_vec(&[2, 1], vec![f32::NAN, 1.0]);
        let c = matmul_tn(&a, &b);
        assert!(
            c.data()[0].is_nan(),
            "0·NaN must propagate, got {}",
            c.data()[0]
        );
    }

    /// Where the skip is kept ([`matmul`], inference path) the documented
    /// finite-weights invariant applies: zero rows skip, finite math is
    /// unchanged.
    #[test]
    fn matmul_zero_skip_exact_on_finite_inputs() {
        let a = Tensor::from_vec(&[1, 3], vec![0.0, 2.0, 0.0]);
        let b = Tensor::from_vec(&[3, 2], vec![9.0, 9.0, 1.0, 2.0, 9.0, 9.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[2.0, 4.0]);
    }

    #[test]
    fn conv_geom_new_rejects_degenerate_geometry() {
        // kernel larger than the padded input used to underflow usize
        let err = ConvGeom::new(3, 3, 7, 1, 0).unwrap_err();
        assert!(
            err.contains("kernel 7 exceeds"),
            "unexpected message: {err}"
        );
        assert!(ConvGeom::new(3, 3, 7, 1, 2).is_ok()); // 3 + 2·2 = 7 fits
        assert!(ConvGeom::new(3, 3, 3, 0, 0).unwrap_err().contains("stride"));
        assert!(ConvGeom::new(3, 3, 0, 1, 0).unwrap_err().contains("kernel"));
    }

    #[test]
    #[should_panic(expected = "exceeds padded input")]
    fn conv_geom_oversized_kernel_panics_clearly() {
        let g = ConvGeom {
            in_h: 3,
            in_w: 3,
            kernel: 7,
            stride: 1,
            pad: 0,
        };
        let _ = g.out_h();
    }

    #[test]
    fn conv2d_scratch_reuse_is_stable() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let input = Tensor::from_vec(
            &[3, 2, 6, 6],
            (0..3 * 2 * 36).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let weight = Tensor::from_vec(
            &[4, 2, 3, 3],
            (0..4 * 2 * 9).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let bias = Tensor::from_vec(&[4], vec![0.1, -0.2, 0.3, 0.0]);
        let geom = ConvGeom::new(6, 6, 3, 1, 1).unwrap();
        let mut scratch = ConvScratch::default();
        let first = conv2d_scratch(&input, &weight, &bias, geom, &mut scratch);
        // second pass through the dirty scratch must be identical
        let second = conv2d_scratch(&input, &weight, &bias, geom, &mut scratch);
        assert_eq!(first.data(), second.data());
        // and a smaller batch through the same (oversized) scratch too
        let small = Tensor::from_vec(&[1, 2, 6, 6], input.data()[..72].to_vec());
        let via_scratch = conv2d_scratch(&small, &weight, &bias, geom, &mut scratch);
        let fresh = conv2d(&small, &weight, &bias, geom);
        assert_eq!(via_scratch.data(), fresh.data());
    }

    /// The batched lowering (one im2col + one GEMM for the whole batch)
    /// must be bit-identical to running each image alone — the property
    /// that keeps DES↔RT survivor sets identical when RT batches.
    #[test]
    fn conv2d_batched_is_bit_identical_to_per_image() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 4;
        let input = Tensor::from_vec(
            &[n, 1, 10, 10],
            (0..n * 100).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let weight = Tensor::from_vec(
            &[8, 1, 5, 5],
            (0..8 * 25).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let bias = Tensor::from_vec(&[8], (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let geom = ConvGeom::new(10, 10, 5, 2, 2).unwrap();
        let batched = conv2d(&input, &weight, &bias, geom);
        let out_plane = batched.len() / n;
        for b in 0..n {
            let one = Tensor::from_vec(
                &[1, 1, 10, 10],
                input.data()[b * 100..(b + 1) * 100].to_vec(),
            );
            let single = conv2d(&one, &weight, &bias, geom);
            assert_eq!(
                single.data(),
                &batched.data()[b * out_plane..(b + 1) * out_plane],
                "image {} diverged between batched and single forward",
                b
            );
        }
    }

    /// The span fast path and the per-element sweep must place identical
    /// bits in identical slots for every geometry shape (pad > kernel,
    /// stride > 1, taps that never land in-bounds, 1×1 kernels).
    #[test]
    fn im2col_row_span_is_bit_identical_to_sweep() {
        let cases = [
            ConvGeom::new(5, 5, 3, 1, 1).unwrap(),
            ConvGeom::new(10, 10, 5, 2, 2).unwrap(),
            ConvGeom::new(7, 9, 3, 2, 0).unwrap(),
            ConvGeom::new(3, 3, 3, 1, 2).unwrap(), // pad spans most of the input
            ConvGeom::new(6, 6, 1, 1, 0).unwrap(),
            ConvGeom::new(4, 4, 2, 3, 1).unwrap(), // stride > kernel
            ConvGeom::new(2, 2, 3, 1, 3).unwrap(), // heavy padding, tiny input
        ];
        for geom in cases {
            let plane: Vec<f32> = (0..geom.in_h * geom.in_w)
                .map(|i| (i as f32 * 0.73).sin())
                .collect();
            let (oh, ow) = (geom.out_h(), geom.out_w());
            for ky in 0..geom.kernel {
                for kx in 0..geom.kernel {
                    let mut sweep = vec![0.0f32; oh * ow];
                    let mut span = vec![0.0f32; oh * ow];
                    im2col_row_sweep(&plane, geom, ky, kx, &mut sweep);
                    im2col_row_span(&plane, geom, ky, kx, &mut span);
                    let sweep_bits: Vec<u32> = sweep.iter().map(|v| v.to_bits()).collect();
                    let span_bits: Vec<u32> = span.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(sweep_bits, span_bits, "geom {:?} tap ({ky},{kx})", geom);
                }
            }
        }
    }

    #[test]
    fn im2col_into_reuses_buffer() {
        let geom = ConvGeom::new(3, 3, 2, 1, 0).unwrap();
        let input: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let fresh = im2col(&input, 1, geom);
        let mut buf = vec![7.0f32; 3]; // stale, wrongly sized
        im2col_into(&input, 1, geom, &mut buf);
        assert_eq!(fresh.data(), &buf[..]);
    }

    #[test]
    fn conv_geom_output_dims() {
        let g = ConvGeom {
            in_h: 5,
            in_w: 5,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(g.out_h(), 5);
        assert_eq!(g.out_w(), 5);
        let g2 = ConvGeom {
            in_h: 4,
            in_w: 6,
            kernel: 2,
            stride: 2,
            pad: 0,
        };
        assert_eq!(g2.out_h(), 2);
        assert_eq!(g2.out_w(), 3);
    }

    #[test]
    fn conv2d_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let input = Tensor::from_vec(
            &[2, 3, 6, 7],
            (0..2 * 3 * 6 * 7)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        );
        let weight = Tensor::from_vec(
            &[4, 3, 3, 3],
            (0..4 * 3 * 9).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let bias = Tensor::from_vec(&[4], (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let geom = ConvGeom {
            in_h: 6,
            in_w: 7,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let fast = conv2d(&input, &weight, &bias, geom);
        let slow = conv2d_naive(&input, &weight, &bias, geom);
        assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!(close(*a, *b), "{} vs {}", a, b);
        }
    }

    #[test]
    fn conv2d_stride2_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let input = Tensor::from_vec(
            &[1, 2, 8, 8],
            (0..2 * 64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let weight = Tensor::from_vec(
            &[3, 2, 3, 3],
            (0..3 * 2 * 9).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let bias = Tensor::zeros(&[3]);
        let geom = ConvGeom {
            in_h: 8,
            in_w: 8,
            kernel: 3,
            stride: 2,
            pad: 0,
        };
        let fast = conv2d(&input, &weight, &bias, geom);
        let slow = conv2d_naive(&input, &weight, &bias, geom);
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn im2col_col2im_adjoint_shape() {
        // col2im(im2col(x)) multiplies each pixel by the number of windows
        // covering it; with kernel=1 stride=1 it is the identity.
        let geom = ConvGeom {
            in_h: 3,
            in_w: 3,
            kernel: 1,
            stride: 1,
            pad: 0,
        };
        let input: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let cols = im2col(&input, 1, geom);
        let back = col2im(&cols, 1, geom);
        assert_eq!(back, input);
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let (out, arg) = maxpool2d(&input, 2, 2);
        assert_eq!(out.data(), &[4.0, 8.0, 12.0, 16.0]);
        let grad_out = Tensor::full(&[1, 1, 2, 2], 1.0);
        let grad_in = maxpool2d_backward(&grad_out, &arg, &[1, 1, 4, 4]);
        // exactly one gradient per window, at the max location
        assert_eq!(grad_in.sum(), 4.0);
        assert_eq!(grad_in.at4(0, 0, 1, 1), 1.0);
        assert_eq!(grad_in.at4(0, 0, 3, 3), 1.0);
    }

    #[test]
    fn activations() {
        let x = Tensor::from_vec(&[3], vec![-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        assert_eq!(leaky_relu(&x, 0.1).data(), &[-0.1, 0.0, 2.0]);
        let s = sigmoid(&x);
        assert!(close(s.data()[1], 0.5));
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&x);
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!(close(sum, 1.0));
        }
        // monotone in input
        assert!(s.at2(0, 2) > s.at2(0, 1));
    }

    #[test]
    fn global_avg_pool_means() {
        let input = Tensor::from_vec(
            &[1, 2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        );
        let out = global_avg_pool(&input);
        assert_eq!(out.data(), &[2.5, 10.0]);
    }
}
