//! Integer (int8) inference kernels: symmetric quantization, an
//! i8×i8→i32 GEMM, and an i8 im2col.
//!
//! Unlike the f32 SIMD paths in [`crate::simd`], everything here is
//! **exact**: i8 products fit in i16, sums of a realistic `k` fit in i32,
//! and integer addition is associative — so the AVX2 fast paths (compiled
//! under `--features simd`, dispatched at runtime) are *bit-identical* to
//! the scalar reference, not merely ULP-close. These kernels are always
//! compiled; only their vectorized inner loops are feature-gated.
//!
//! Quantization scheme (DESIGN.md §12): symmetric per-tensor, scale
//! `s = max|v| / 127`, quantized range `[-127, 127]` (−128 unused so the
//! scheme stays symmetric and i8×i8 products stay ≤ 127² = 16129 < i16::MAX).
//! Real value ≈ `q as f32 * s`. Zero is exactly representable (`q = 0`),
//! which matters because conv zero-padding must quantize to the same
//! value as a genuinely zero input pixel.

use crate::ops::ConvGeom;

/// Quantize `data` symmetrically to i8 into `out` (resized to match) and
/// return the scale such that `data[i] ≈ out[i] as f32 * scale`.
///
/// All-zero (or empty) input returns scale 1.0 with all-zero output, so
/// dequantization is still exact. Rounds to nearest (ties away from zero,
/// matching `f32::round`) and clamps to `[-127, 127]`.
pub fn quantize_symmetric_i8_into(data: &[f32], out: &mut Vec<i8>) -> f32 {
    out.clear();
    out.reserve(data.len());
    let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        out.resize(data.len(), 0);
        return 1.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    for &v in data {
        out.push((v * inv).round().clamp(-127.0, 127.0) as i8);
    }
    scale
}

/// Quantize `rows` equal-length rows of `data` independently (one scale
/// per row) — the per-sample dynamic activation quantization. Each row is
/// quantized exactly as [`quantize_symmetric_i8_into`] would quantize it
/// alone, which is what makes int8 batched inference bit-identical to
/// int8 single-sample inference: a sample's quantization never depends on
/// its batch neighbours.
pub fn quantize_rows_symmetric_i8_into(
    data: &[f32],
    rows: usize,
    out: &mut Vec<i8>,
    scales: &mut Vec<f32>,
) {
    assert!(rows > 0, "quantize_rows: rows must be >= 1");
    assert_eq!(data.len() % rows, 0, "quantize_rows: ragged rows");
    let row_len = data.len() / rows;
    out.clear();
    out.reserve(data.len());
    scales.clear();
    scales.reserve(rows);
    for row in data.chunks_exact(row_len) {
        let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max_abs == 0.0 {
            out.resize(out.len() + row_len, 0);
            scales.push(1.0);
            continue;
        }
        let inv = 127.0 / max_abs;
        for &v in row {
            out.push((v * inv).round().clamp(-127.0, 127.0) as i8);
        }
        scales.push(max_abs / 127.0);
    }
}

/// `out = A(m×k, i8) × B(k×n, i8)` accumulated in i32. Exact in both the
/// scalar and AVX2 paths (see module docs), so scalar↔SIMD is
/// bit-identical. Mirrors the f32 GEMM's rank-1-update (axpy) order with
/// an `a == 0` skip — legitimate here because integer math has no NaN/Inf
/// to propagate.
pub fn gemm_i8_into(ad: &[i8], m: usize, k: usize, bd: &[i8], n: usize, out: &mut Vec<i32>) {
    assert_eq!(ad.len(), m * k, "i8 gemm: lhs length mismatch");
    assert_eq!(bd.len(), k * n, "i8 gemm: rhs length mismatch");
    out.clear();
    out.resize(m * n, 0);
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            axpy_i8(av, brow, orow);
        }
    }
}

/// `out[j] += a · b[j]` over i8 operands into i32, dispatched.
#[inline]
fn axpy_i8(a: i8, b: &[i8], out: &mut [i32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::simd_active() {
        // SAFETY: simd_active() verified AVX2 on this CPU.
        unsafe { avx2::axpy_i8(a, b, out) };
        return;
    }
    axpy_i8_scalar(a, b, out)
}

#[inline]
fn axpy_i8_scalar(a: i8, b: &[i8], out: &mut [i32]) {
    let a = a as i32;
    for (o, &bv) in out.iter_mut().zip(b.iter()) {
        *o += a * bv as i32;
    }
}

/// Exact i8 dot product accumulated in i32 (used by the quantized Dense
/// layer, whose weights are stored row-major (out, in) so each output is
/// one dot). Scalar and AVX2 paths are bit-identical.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::simd_active() {
        // SAFETY: simd_active() verified AVX2 on this CPU.
        return unsafe { avx2::dot_i8(a, b) };
    }
    dot_i8_scalar(a, b)
}

#[inline]
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len().min(b.len());
    let mut acc = 0i32;
    for i in 0..n {
        acc += a[i] as i32 * b[i] as i32;
    }
    acc
}

/// i8 analogue of [`crate::ops::im2col_into`] for a batch of `n` images:
/// unfolds `input` (n × c × in_h × in_w, quantized) into `out` with shape
/// `(c·k²) × (n·oh·ow)`, columns grouped by image exactly like the f32
/// batched lowering. Out-of-bounds taps contribute 0, which under
/// symmetric quantization is exactly the quantized value of a zero pixel
/// — so quantize-then-unfold equals unfold-then-quantize.
pub fn im2col_i8_into(input: &[i8], n: usize, c: usize, geom: ConvGeom, out: &mut Vec<i8>) {
    let k = geom.kernel;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let plane_len = geom.in_h * geom.in_w;
    assert_eq!(
        input.len(),
        n * c * plane_len,
        "i8 im2col: input length mismatch"
    );
    let img_cols = oh * ow;
    let cols = n * img_cols;
    out.clear();
    out.resize(c * k * k * cols, 0);
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let dst = &mut out[row * cols..(row + 1) * cols];
                for img in 0..n {
                    let off = (img * c + ch) * plane_len;
                    let plane = &input[off..off + plane_len];
                    let dst_img = &mut dst[img * img_cols..(img + 1) * img_cols];
                    im2col_i8_row(plane, geom, ky, kx, dst_img);
                }
            }
        }
    }
}

/// One (channel, tap) row of the i8 unfold for a single image plane —
/// structurally identical to the f32 `im2col_row` so the two lowerings
/// place every element in the same slot.
#[inline]
fn im2col_i8_row(plane: &[i8], geom: ConvGeom, ky: usize, kx: usize, dst: &mut [i8]) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    for oy in 0..oh {
        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
        if iy < 0 || iy >= geom.in_h as isize {
            continue; // row already zeroed
        }
        let iy = iy as usize;
        for ox in 0..ow {
            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
            if ix < 0 || ix >= geom.in_w as isize {
                continue;
            }
            dst[oy * ow + ox] = plane[iy * geom.in_w + ix as usize];
        }
    }
}

/// AVX2 inner loops for the integer kernels. Exactness argument: widen
/// i8→i16 (`cvtepi8_epi16`), multiply in i16 (`mullo` — products are at
/// most 127·127 = 16129, well inside i16), then widen/accumulate in i32.
/// Every intermediate is exact, so these are bit-identical to the scalar
/// loops for any input.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use std::arch::x86_64::*;

    /// `out[j] += a · b[j]` (i8 operands, i32 accumulation), 16 b-lanes
    /// per step.
    ///
    /// # Safety
    /// Requires AVX2 (check [`crate::simd::simd_active`] first).
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_i8(a: i8, b: &[i8], out: &mut [i32]) {
        let n = out.len().min(b.len());
        let av16 = _mm256_set1_epi16(a as i16);
        let mut j = 0usize;
        while j + 16 <= n {
            // 16 × i8 → 16 × i16
            let bv8 = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
            let bv16 = _mm256_cvtepi8_epi16(bv8);
            // exact i16 products (≤ 16129)
            let prod16 = _mm256_mullo_epi16(av16, bv16);
            // widen to 2 × 8 × i32 and accumulate
            let lo32 = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod16));
            let hi32 = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod16, 1));
            let o0 = _mm256_loadu_si256(out.as_ptr().add(j) as *const __m256i);
            let o1 = _mm256_loadu_si256(out.as_ptr().add(j + 8) as *const __m256i);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(j) as *mut __m256i,
                _mm256_add_epi32(o0, lo32),
            );
            _mm256_storeu_si256(
                out.as_mut_ptr().add(j + 8) as *mut __m256i,
                _mm256_add_epi32(o1, hi32),
            );
            j += 16;
        }
        let a32 = a as i32;
        while j < n {
            *out.get_unchecked_mut(j) += a32 * *b.get_unchecked(j) as i32;
            j += 1;
        }
    }

    /// Exact i8 dot product: widen both operands to i16, `madd_epi16`
    /// (pairwise i16·i16 + i16·i16 → i32, exact), accumulate in i32.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= n {
            let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
            let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
            i += 16;
        }
        // horizontal i32 sum (integer addition is associative: exact)
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        let mut total = _mm_cvtsi128_si32(s);
        while i < n {
            total += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
            i += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ConvGeom;

    #[test]
    fn quantize_roundtrips_extremes_exactly() {
        let data = vec![-2.0f32, -1.0, 0.0, 0.5, 2.0];
        let mut q = Vec::new();
        let scale = quantize_symmetric_i8_into(&data, &mut q);
        assert_eq!(q[0], -127);
        assert_eq!(q[2], 0);
        assert_eq!(q[4], 127);
        assert!((q[4] as f32 * scale - 2.0).abs() < 1e-6);
        // max quantization error is scale/2
        for (&v, &qi) in data.iter().zip(q.iter()) {
            assert!((qi as f32 * scale - v).abs() <= scale * 0.5 + 1e-7);
        }
    }

    #[test]
    fn quantize_all_zero_is_identity_under_dequant() {
        let mut q = Vec::new();
        let scale = quantize_symmetric_i8_into(&[0.0, 0.0, 0.0], &mut q);
        assert_eq!(scale, 1.0);
        assert_eq!(q, vec![0, 0, 0]);
    }

    #[test]
    fn per_row_quantization_matches_single_row_quantization() {
        // The property the int8 batch↔single bit-identity rests on.
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..10).map(|i| ((i + r * 3) as f32 - 4.5) * 0.21).collect())
            .collect();
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let mut q_all = Vec::new();
        let mut s_all = Vec::new();
        quantize_rows_symmetric_i8_into(&flat, 4, &mut q_all, &mut s_all);
        for (r, row) in rows.iter().enumerate() {
            let mut q_one = Vec::new();
            let s_one = quantize_symmetric_i8_into(row, &mut q_one);
            assert_eq!(&q_all[r * 10..(r + 1) * 10], &q_one[..], "row {r}");
            assert_eq!(s_all[r].to_bits(), s_one.to_bits(), "row {r} scale");
        }
    }

    #[test]
    fn i8_gemm_matches_wide_integer_reference() {
        let (m, k, n) = (3usize, 5usize, 4usize);
        let a: Vec<i8> = (0..m * k)
            .map(|i| ((i * 37 + 11) % 255) as i16 as i8)
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|i| ((i * 53 + 7) % 255) as i16 as i8)
            .collect();
        let mut out = Vec::new();
        gemm_i8_into(&a, m, k, &b, n, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0i64;
                for p in 0..k {
                    want += a[i * k + p] as i64 * b[p * n + j] as i64;
                }
                assert_eq!(out[i * n + j] as i64, want, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn dot_i8_matches_gemm_row() {
        let a: Vec<i8> = (0..40).map(|i| (i as i32 * 19 % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..40).map(|i| (i as i32 * 31 % 255 - 127) as i8).collect();
        let mut out = Vec::new();
        gemm_i8_into(&a, 1, 40, &b, 1, &mut out);
        assert_eq!(dot_i8(&a, &b), out[0]);
    }

    #[test]
    fn i8_im2col_matches_f32_im2col_after_quantizing_zero_padded_input() {
        // Quantize-then-unfold must equal unfold-then-quantize: padding
        // contributes exact zeros in both domains.
        let geom = ConvGeom::new(5, 5, 3, 2, 1).unwrap();
        let input_f: Vec<f32> = (0..2 * 25).map(|i| ((i % 11) as f32 - 5.0) * 0.3).collect();
        let mut input_q = Vec::new();
        let scale = quantize_symmetric_i8_into(&input_f, &mut input_q);

        let mut cols_q = Vec::new();
        im2col_i8_into(&input_q, 1, 2, geom, &mut cols_q);

        let mut cols_f = Vec::new();
        crate::ops::im2col_into(&input_f, 2, geom, &mut cols_f);
        assert_eq!(cols_q.len(), cols_f.len());
        let inv = 1.0 / scale;
        for (&qc, &fc) in cols_q.iter().zip(cols_f.iter()) {
            let want = (fc * inv).round().clamp(-127.0, 127.0) as i8;
            assert_eq!(qc, want);
        }
    }

    #[test]
    fn i8_im2col_batched_is_concatenation_of_singles() {
        let geom = ConvGeom::new(4, 4, 2, 1, 0).unwrap();
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let img0: Vec<i8> = (0..16).map(|i| i as i8).collect();
        let img1: Vec<i8> = (0..16).map(|i| (i as i8).wrapping_mul(3)).collect();
        let both: Vec<i8> = img0.iter().chain(img1.iter()).copied().collect();

        let mut cols_b = Vec::new();
        im2col_i8_into(&both, 2, 1, geom, &mut cols_b);
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        im2col_i8_into(&img0, 1, 1, geom, &mut c0);
        im2col_i8_into(&img1, 1, 1, geom, &mut c1);

        let cols = 2 * oh * ow;
        let single = oh * ow;
        for row in 0..4 {
            assert_eq!(
                &cols_b[row * cols..row * cols + single],
                &c0[row * single..(row + 1) * single]
            );
            assert_eq!(
                &cols_b[row * cols + single..(row + 1) * cols],
                &c1[row * single..(row + 1) * single]
            );
        }
    }
}
