//! Runtime-dispatched SIMD kernels behind the `simd` cargo feature.
//!
//! Every kernel here exists in two forms: a `_scalar` reference that is
//! always compiled (and is the bit-exact semantics every conformance test
//! pins) and, under `--features simd` on x86_64, an AVX2/FMA fast path
//! selected at runtime via [`simd_active`]. Without the feature, or on a
//! CPU without AVX2+FMA, the dispatched entry points *are* the scalar
//! kernels — the feature can widen the math but never remove the fallback.
//!
//! # ULP policy (DESIGN.md §12)
//!
//! * [`axpy`] keeps the per-element accumulation order of the scalar GEMM
//!   (ascending `p`, one rank-1 update at a time) but fuses each
//!   multiply-add into a single-rounding FMA. Relative to the scalar
//!   two-rounding `out += a·b`, each of the `k` accumulation steps differs
//!   by at most one rounding, so a dot product of length `k` is within
//!   `k` ULP of the scalar result (in practice far less; the conformance
//!   proptests assert a relative bound derived from `Σ|a·b|`).
//! * [`sum_sq_diff`] / [`sum_abs_diff`] use 8 independent lane accumulators
//!   and a fixed-order horizontal reduction; the reassociation bounds the
//!   difference from the scalar left-to-right sum by the same `n`-ULP
//!   argument. These feed the SDD distance, whose threshold comparisons
//!   sit far from the decision boundary relative to that error.
//! * Everything integer (see [`crate::quant`]) is exact: scalar and SIMD
//!   paths are bit-identical by construction and tested as such.

/// Whether the SIMD fast paths are compiled in *and* this CPU supports
/// them (x86_64 AVX2 + FMA). The probe result is cached after first use.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static ACTIVE: OnceLock<bool> = OnceLock::new();
        *ACTIVE.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    false
}

/// `out[j] += a · b[j]` in ascending `j` — the scalar reference for the
/// GEMM inner kernel and the mandatory fallback of [`axpy`].
#[inline]
pub fn axpy_scalar(a: f32, b: &[f32], out: &mut [f32]) {
    for (o, &bv) in out.iter_mut().zip(b.iter()) {
        *o += a * bv;
    }
}

/// Dispatched `out[j] += a · b[j]` (AVX2/FMA when active, else scalar).
#[inline]
pub fn axpy(a: f32, b: &[f32], out: &mut [f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: simd_active() verified AVX2+FMA on this CPU.
        unsafe { avx2::axpy_fma(a, b, out) };
        return;
    }
    axpy_scalar(a, b, out)
}

/// `Σ (a[i] − b[i])²`, left-to-right — the scalar reference (exactly the
/// accumulation the SDD's MSE/NRMSE metrics historically ran).
#[inline]
pub fn sum_sq_diff_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Dispatched `Σ (a[i] − b[i])²`.
#[inline]
pub fn sum_sq_diff(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: simd_active() verified AVX2+FMA on this CPU.
        return unsafe { avx2::sum_sq_diff(a, b) };
    }
    sum_sq_diff_scalar(a, b)
}

/// `Σ |a[i] − b[i]|`, left-to-right — the scalar reference (the SDD's SAD).
#[inline]
pub fn sum_abs_diff_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += (x - y).abs();
    }
    acc
}

/// Dispatched `Σ |a[i] − b[i]|`.
#[inline]
pub fn sum_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: simd_active() verified AVX2 on this CPU.
        return unsafe { avx2::sum_abs_diff(a, b) };
    }
    sum_abs_diff_scalar(a, b)
}

/// AVX2/FMA implementations. Only compiled with `--features simd` on
/// x86_64; every function is `unsafe` because it requires the caller to
/// have verified the CPU features (use the safe dispatchers above).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod avx2 {
    use std::arch::x86_64::*;

    /// Fixed-order horizontal sum of one 256-bit register: low and high
    /// 128-bit halves are added lane-wise, then reduced pairwise. The
    /// order is deterministic, so repeated calls are bit-stable.
    ///
    /// # Safety
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0b01));
        _mm_cvtss_f32(s)
    }

    /// `out[j] += a · b[j]`, 8 lanes per step with a scalar tail.
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`super::simd_active`] first).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_fma(a: f32, b: &[f32], out: &mut [f32]) {
        let n = out.len().min(b.len());
        let av = _mm256_set1_ps(a);
        let mut j = 0usize;
        while j + 8 <= n {
            let bv = _mm256_loadu_ps(b.as_ptr().add(j));
            let ov = _mm256_loadu_ps(out.as_ptr().add(j));
            _mm256_storeu_ps(out.as_mut_ptr().add(j), _mm256_fmadd_ps(av, bv, ov));
            j += 8;
        }
        while j < n {
            *out.get_unchecked_mut(j) += a * *b.get_unchecked(j);
            j += 1;
        }
    }

    /// `Σ (a[i] − b[i])²` with 8 lane accumulators.
    ///
    /// # Safety
    /// Requires AVX2 + FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sum_sq_diff(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= n {
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
            );
            acc = _mm256_fmadd_ps(d, d, acc);
            i += 8;
        }
        let mut total = hsum256(acc);
        while i < n {
            let d = *a.get_unchecked(i) - *b.get_unchecked(i);
            total += d * d;
            i += 1;
        }
        total
    }

    /// `Σ |a[i] − b[i]|` with 8 lane accumulators.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let sign_mask = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= n {
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
            );
            acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign_mask, d));
            i += 8;
        }
        let mut total = hsum256(acc);
        while i < n {
            total += (*a.get_unchecked(i) - *b.get_unchecked(i)).abs();
            i += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_axpy_accumulates_in_order() {
        let mut out = vec![1.0f32, 2.0, 3.0];
        axpy_scalar(2.0, &[10.0, 20.0, 30.0], &mut out);
        assert_eq!(out, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn dispatched_reductions_agree_with_scalar_within_tolerance() {
        // On a scalar build this is trivially exact; with `simd` on an AVX2
        // host it pins the documented ULP-bounded conformance at a few
        // awkward lengths (below, at, and past the 8-lane width).
        for n in [1usize, 7, 8, 9, 64, 257] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
            let (s1, s2) = (sum_sq_diff_scalar(&a, &b), sum_sq_diff(&a, &b));
            assert!((s1 - s2).abs() <= 1e-5 * s1.abs().max(1.0), "{s1} vs {s2}");
            let (d1, d2) = (sum_abs_diff_scalar(&a, &b), sum_abs_diff(&a, &b));
            assert!((d1 - d2).abs() <= 1e-5 * d1.abs().max(1.0), "{d1} vs {d2}");
        }
    }

    #[test]
    fn dispatched_axpy_matches_scalar_within_tolerance() {
        for n in [1usize, 8, 13, 250] {
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.19).sin()).collect();
            let mut o1: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).cos()).collect();
            let mut o2 = o1.clone();
            axpy_scalar(0.713, &b, &mut o1);
            axpy(0.713, &b, &mut o2);
            for (x, y) in o1.iter().zip(o2.iter()) {
                assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0), "{x} vs {y}");
            }
        }
    }
}
