//! Dense `f32` tensors in row-major (C-contiguous) layout.
//!
//! The engine only needs rank-1/2/4 tensors (vectors, matrices, NCHW feature
//! maps), but the storage is rank-generic: a shape vector plus a flat buffer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Create a tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Create a tensor from an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {:?} implies {} elements, got {}",
            shape,
            n,
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the flat buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at a rank-2 index `(row, col)`.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Element at a rank-4 NCHW index.
    #[inline]
    pub fn at4(&self, n: usize, ch: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.rank(), 4);
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + ch) * hs + h) * ws + w]
    }

    /// Mutable element at a rank-4 NCHW index.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, ch: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.rank(), 4);
        let (cs, hs, ws) = (self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * cs + ch) * hs + h) * ws + w]
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, k: f32) {
        for a in self.data.iter_mut() {
            *a *= k;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element along the last axis of a rank-2 tensor,
    /// one result per row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2);
        let cols = self.shape[1];
        self.data
            .chunks(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Squared L2 norm of the tensor.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} elems])", self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_size_and_values() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at2(0, 1), 2.0);
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn nchw_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 7.5;
        assert_eq!(t.at4(1, 2, 3, 4), 7.5);
        // last element in the flat buffer
        assert_eq!(t.data()[t.len() - 1], 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).reshape(&[2, 2]);
        assert_eq!(t.at2(1, 1), 4.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::full(&[3], 1.0);
        let b = Tensor::full(&[3], 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 1.5, 1.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, 0.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.sq_norm(), 14.0);
    }

    #[test]
    fn argmax_rows_picks_max_per_row() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.2, 0.7, 0.3, 0.1]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }
}
