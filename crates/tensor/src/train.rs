//! Losses, the SGD-with-momentum optimizer, and a mini-batch training loop.
//!
//! Matches §2.1 of the paper: specialized CNNs are trained with stochastic
//! gradient descent on auto-labeled frames.

use crate::layers::Sequential;
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Binary cross-entropy on logits. Returns `(mean loss, dL/dlogits)`.
///
/// `logits` and `targets` are `(n, 1)`; targets are 0.0 or 1.0.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    let n = logits.shape()[0] as f32;
    let mut grad = Tensor::zeros(logits.shape());
    let mut loss = 0.0f32;
    for ((&z, &t), g) in logits
        .data()
        .iter()
        .zip(targets.data().iter())
        .zip(grad.data_mut().iter_mut())
    {
        // numerically stable: max(z,0) - z*t + ln(1+e^-|z|)
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        let p = crate::ops::sigmoid_scalar(z);
        *g = (p - t) / n;
    }
    (loss / n, grad)
}

/// Mean squared error. Returns `(mean loss, dL/dpred)`.
pub fn mse(pred: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), targets.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut loss = 0.0f32;
    for ((&p, &t), g) in pred
        .data()
        .iter()
        .zip(targets.data().iter())
        .zip(grad.data_mut().iter_mut())
    {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Softmax cross-entropy over class logits. `logits` is `(n, k)`; `labels`
/// holds the true class index per row. Returns `(mean loss, dL/dlogits)`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be (n, k)");
    let n = logits.shape()[0];
    let k = logits.shape()[1];
    assert_eq!(labels.len(), n, "one label per row");
    let probs = crate::ops::softmax_rows(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {} out of range {}", y, k);
        let p = probs.data()[i * k + y].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * k + y] -= 1.0;
    }
    grad.scale(1.0 / n as f32);
    (loss / n as f32, grad)
}

/// SGD with classical momentum and optional L2 weight decay.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }
}

impl Sgd {
    /// Apply one update step to every parameter of the network, then zero the
    /// gradients.
    pub fn step(&self, net: &mut Sequential) {
        for p in net.params_mut() {
            let wd = self.weight_decay;
            let mu = self.momentum;
            let lr = self.lr;
            for i in 0..p.value.len() {
                let g = p.grad.data()[i] + wd * p.value.data()[i];
                let v = mu * p.velocity.data()[i] - lr * g;
                p.velocity.data_mut()[i] = v;
                p.value.data_mut()[i] += v;
            }
            p.zero_grad();
        }
    }
}

/// A labeled dataset of equally-shaped sample tensors.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Per-sample input of shape `(c, h, w)` flattened.
    pub inputs: Vec<Vec<f32>>,
    /// Per-sample binary label.
    pub labels: Vec<f32>,
    /// Sample shape `(c, h, w)`.
    pub sample_shape: Vec<usize>,
}

impl Dataset {
    pub fn new(sample_shape: &[usize]) -> Self {
        Dataset {
            inputs: Vec::new(),
            labels: Vec::new(),
            sample_shape: sample_shape.to_vec(),
        }
    }

    pub fn push(&mut self, input: Vec<f32>, label: f32) {
        debug_assert_eq!(input.len(), self.sample_shape.iter().product::<usize>());
        self.inputs.push(input);
        self.labels.push(label);
    }

    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Assemble a batch tensor `(n, c, h, w)` and label tensor `(n, 1)` from
    /// the given sample indices.
    pub fn batch(&self, idx: &[usize]) -> (Tensor, Tensor) {
        let per = self.sample_shape.iter().product::<usize>();
        let mut data = Vec::with_capacity(idx.len() * per);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            data.extend_from_slice(&self.inputs[i]);
            labels.push(self.labels[i]);
        }
        let mut shape = vec![idx.len()];
        shape.extend_from_slice(&self.sample_shape);
        (
            Tensor::from_vec(&shape, data),
            Tensor::from_vec(&[idx.len(), 1], labels),
        )
    }

    /// Split into (train, test) by proportion, without shuffling.
    pub fn split(&self, train_frac: f32) -> (Dataset, Dataset) {
        let cut = ((self.len() as f32) * train_frac).round() as usize;
        let mut train = Dataset::new(&self.sample_shape);
        let mut test = Dataset::new(&self.sample_shape);
        for i in 0..self.len() {
            if i < cut {
                train.push(self.inputs[i].clone(), self.labels[i]);
            } else {
                test.push(self.inputs[i].clone(), self.labels[i]);
            }
        }
        (train, test)
    }
}

/// Configuration for [`train_binary_classifier`].
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub sgd: Sgd,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            sgd: Sgd::default(),
            lr_decay: 0.92,
        }
    }
}

/// Train a binary classifier (single sigmoid-logit output) on a dataset.
/// Returns the per-epoch mean training loss.
pub fn train_binary_classifier(
    net: &mut Sequential,
    data: &Dataset,
    cfg: &TrainConfig,
    rng: &mut impl Rng,
) -> Vec<f32> {
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut sgd = cfg.sgd;
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let (x, y) = data.batch(chunk);
            let logits = net.forward(&x, true);
            let (loss, grad) = bce_with_logits(&logits, &y);
            net.zero_grad();
            net.backward(&grad);
            sgd.step(net);
            total += loss;
            batches += 1;
        }
        losses.push(if batches > 0 {
            total / batches as f32
        } else {
            0.0
        });
        sgd.lr *= cfg.lr_decay;
    }
    losses
}

/// Evaluate a binary classifier: fraction of correct (threshold 0.5) labels.
pub fn eval_binary_classifier(net: &mut Sequential, data: &Dataset) -> f32 {
    if data.is_empty() {
        return 1.0;
    }
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut correct = 0usize;
    for chunk in idx.chunks(64) {
        let (x, y) = data.batch(chunk);
        let logits = net.forward(&x, false);
        for (&z, &t) in logits.data().iter().zip(y.data().iter()) {
            let p = crate::ops::sigmoid_scalar(z);
            if (p >= 0.5) == (t >= 0.5) {
                correct += 1;
            }
        }
    }
    correct as f32 / data.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Act, Activation, Dense, Flatten, LayerKind};
    use rand::SeedableRng;

    #[test]
    fn bce_loss_is_low_for_confident_correct() {
        let logits = Tensor::from_vec(&[2, 1], vec![8.0, -8.0]);
        let targets = Tensor::from_vec(&[2, 1], vec![1.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss < 0.01, "loss {}", loss);
        assert!(grad.data().iter().all(|g| g.abs() < 0.01));
    }

    #[test]
    fn bce_gradient_sign() {
        let logits = Tensor::from_vec(&[1, 1], vec![0.0]);
        let targets = Tensor::from_vec(&[1, 1], vec![1.0]);
        let (_, grad) = bce_with_logits(&logits, &targets);
        // predicting 0.5 for a positive sample: push logit up (negative grad)
        assert!(grad.data()[0] < 0.0);
    }

    #[test]
    fn mse_zero_at_target() {
        let p = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let (loss, grad) = mse(&p, &p);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn sgd_reduces_loss_on_linearly_separable_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        // 2-feature inputs shaped as (1,1,2) "images" for generality
        let mut data = Dataset::new(&[1, 1, 2]);
        for _ in 0..200 {
            let x1: f32 = rng.gen_range(-1.0..1.0);
            let x2: f32 = rng.gen_range(-1.0..1.0);
            let label = if x1 + x2 > 0.0 { 1.0 } else { 0.0 };
            data.push(vec![x1, x2], label);
        }
        let mut net = Sequential::new()
            .push(LayerKind::Flatten(Flatten::new()))
            .push(LayerKind::Dense(Dense::new(2, 8, &mut rng)))
            .push(LayerKind::Activation(Activation::new(Act::Relu)))
            .push(LayerKind::Dense(Dense::new(8, 1, &mut rng)));
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            sgd: Sgd {
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            lr_decay: 1.0,
        };
        let losses = train_binary_classifier(&mut net, &data, &cfg, &mut rng);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "losses {:?}",
            losses
        );
        let acc = eval_binary_classifier(&mut net, &data);
        assert!(acc > 0.9, "accuracy {}", acc);
    }

    #[test]
    fn softmax_ce_low_for_confident_correct() {
        let logits = Tensor::from_vec(&[2, 3], vec![9.0, 0.0, 0.0, 0.0, 0.0, 9.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        assert!(loss < 0.01, "loss {}", loss);
        assert!(grad.data().iter().all(|g| g.abs() < 0.01));
    }

    #[test]
    fn softmax_ce_gradient_points_at_label() {
        let logits = Tensor::from_vec(&[1, 3], vec![0.0, 0.0, 0.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        // label column gets negative gradient (push up), others positive
        assert!(grad.at2(0, 1) < 0.0);
        assert!(grad.at2(0, 0) > 0.0);
        assert!(grad.at2(0, 2) > 0.0);
        // gradients sum to ~0 per row
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn softmax_ce_rejects_bad_labels() {
        let logits = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }

    #[test]
    fn dataset_split_partitions() {
        let mut d = Dataset::new(&[1, 1, 1]);
        for i in 0..10 {
            d.push(vec![i as f32], (i % 2) as f32);
        }
        let (tr, te) = d.split(0.7);
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert_eq!(te.inputs[0][0], 7.0);
    }
}
