//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary inputs.

use ffsva_tensor::layers::{AvgPool2d, BatchNorm2d, Dropout, GlobalMaxPool, LayerKind, Sequential};
use ffsva_tensor::ops::{self, ConvGeom};
use ffsva_tensor::Tensor;
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A · I = A for any square matrix.
    #[test]
    fn matmul_identity(data in small_vec(36)) {
        let a = Tensor::from_vec(&[6, 6], data);
        let mut eye = Tensor::zeros(&[6, 6]);
        for i in 0..6 {
            eye.data_mut()[i * 6 + i] = 1.0;
        }
        let c = ops::matmul(&a, &eye);
        for (x, y) in c.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributes(a in small_vec(12), b in small_vec(12), c in small_vec(12)) {
        let ta = Tensor::from_vec(&[3, 4], a);
        let tb = Tensor::from_vec(&[3, 4], b);
        let tc = Tensor::from_vec(&[4, 3], c);
        let mut sum = ta.clone();
        sum.add_assign(&tb);
        let lhs = ops::matmul(&sum, &tc);
        let mut rhs = ops::matmul(&ta, &tc);
        rhs.add_assign(&ops::matmul(&tb, &tc));
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    /// Convolution is linear in the input (zero bias): conv(2x) = 2·conv(x).
    #[test]
    fn conv_is_linear(data in small_vec(64), w in small_vec(9)) {
        let x = Tensor::from_vec(&[1, 1, 8, 8], data);
        let mut x2 = x.clone();
        x2.scale(2.0);
        let weight = Tensor::from_vec(&[1, 1, 3, 3], w);
        let bias = Tensor::zeros(&[1]);
        let geom = ConvGeom::new(8, 8, 3, 1, 1).unwrap();
        let y1 = ops::conv2d(&x, &weight, &bias, geom);
        let y2 = ops::conv2d(&x2, &weight, &bias, geom);
        for (a, b) in y1.data().iter().zip(y2.data().iter()) {
            prop_assert!((2.0 * a - b).abs() < 1e-3);
        }
    }

    /// im2col+GEMM convolution matches the naive reference on random input.
    #[test]
    fn conv_matches_naive(data in small_vec(2 * 49), w in small_vec(2 * 2 * 9), b in small_vec(2)) {
        let x = Tensor::from_vec(&[1, 2, 7, 7], data);
        let weight = Tensor::from_vec(&[2, 2, 3, 3], w);
        let bias = Tensor::from_vec(&[2], b);
        let geom = ConvGeom::new(7, 7, 3, 2, 1).unwrap();
        let fast = ops::conv2d(&x, &weight, &bias, geom);
        let slow = ops::conv2d_naive(&x, &weight, &bias, geom);
        for (a, c) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((a - c).abs() < 1e-3, "{} vs {}", a, c);
        }
    }

    /// The blocked/tiled GEMM matches the unblocked, unskipped reference on
    /// random shapes — including shapes far smaller than one tile.
    #[test]
    fn blocked_matmul_matches_naive(
        (m, k, n, a, b) in (1usize..9, 1usize..9, 1usize..9).prop_flat_map(|(m, k, n)| {
            (Just(m), Just(k), Just(n), small_vec(m * k), small_vec(k * n))
        })
    ) {
        let ta = Tensor::from_vec(&[m, k], a);
        let tb = Tensor::from_vec(&[k, n], b);
        let fast = ops::matmul(&ta, &tb);
        let slow = ops::matmul_naive(&ta, &tb);
        let mut reused = vec![f32::NAN; 3]; // dirty buffer must not leak through
        ops::matmul_into(&ta, &tb, &mut reused);
        for ((x, y), z) in fast.data().iter().zip(slow.data().iter()).zip(reused.iter()) {
            prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
            prop_assert!(x.to_bits() == z.to_bits(), "matmul vs matmul_into");
        }
    }

    /// Scratch-buffer convolution matches the naive reference even when the
    /// scratch arrives dirty from an unrelated earlier call.
    #[test]
    fn conv_scratch_matches_naive(
        data in small_vec(2 * 2 * 49),
        w in small_vec(2 * 2 * 9),
        b in small_vec(2)
    ) {
        let x = Tensor::from_vec(&[2, 2, 7, 7], data);
        let weight = Tensor::from_vec(&[2, 2, 3, 3], w);
        let bias = Tensor::from_vec(&[2], b);
        let geom = ConvGeom::new(7, 7, 3, 2, 1).unwrap();
        let mut scratch = ops::ConvScratch::default();
        scratch.cols.resize(31, f32::NAN);
        scratch.gemm.resize(17, f32::NAN);
        let fast = ops::conv2d_scratch(&x, &weight, &bias, geom, &mut scratch);
        let slow = ops::conv2d_naive(&x, &weight, &bias, geom);
        for (a, c) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((a - c).abs() < 1e-3, "{} vs {}", a, c);
        }
    }

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_idempotent(data in small_vec(32)) {
        let x = Tensor::from_vec(&[32], data);
        let once = ops::relu(&x);
        let twice = ops::relu(&once);
        prop_assert_eq!(once.data(), twice.data());
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
    }

    /// Softmax rows are probability distributions regardless of input.
    #[test]
    fn softmax_rows_are_distributions(data in small_vec(24)) {
        let x = Tensor::from_vec(&[4, 6], data);
        let s = ops::softmax_rows(&x);
        for row in s.data().chunks(6) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// Max pooling output is bounded by the input extrema.
    #[test]
    fn maxpool_bounded(data in small_vec(36)) {
        let x = Tensor::from_vec(&[1, 1, 6, 6], data);
        let (y, _) = ops::maxpool2d(&x, 2, 2);
        let max_in = x.max();
        for &v in y.data() {
            prop_assert!(v <= max_in + 1e-6);
        }
    }

    /// Reshape round-trips preserve the buffer.
    #[test]
    fn reshape_roundtrip(data in small_vec(24)) {
        let x = Tensor::from_vec(&[24], data.clone());
        let y = x.reshape(&[2, 3, 4]).reshape(&[4, 6]).reshape(&[24]);
        prop_assert_eq!(y.into_vec(), data);
    }

    /// AvgPool preserves the global mean for exact tilings.
    #[test]
    fn avgpool_preserves_mean(data in small_vec(64)) {
        let x = Tensor::from_vec(&[1, 1, 8, 8], data);
        let mut l = Sequential::new().push(LayerKind::AvgPool2d(AvgPool2d::new(2, 2)));
        let y = l.forward(&x, false);
        prop_assert!((y.mean() - x.mean()).abs() < 1e-4);
    }

    /// GlobalMaxPool output equals the per-channel maximum.
    #[test]
    fn global_maxpool_is_channel_max(data in small_vec(2 * 16)) {
        let x = Tensor::from_vec(&[1, 2, 4, 4], data.clone());
        let mut l = Sequential::new().push(LayerKind::GlobalMaxPool(GlobalMaxPool::new()));
        let y = l.forward(&x, false);
        for ch in 0..2 {
            let m = data[ch * 16..(ch + 1) * 16]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            prop_assert!((y.data()[ch] - m).abs() < 1e-6);
        }
    }

    /// Training-mode BatchNorm output always has ~zero mean per channel.
    #[test]
    fn batchnorm_zero_mean(data in small_vec(2 * 2 * 9)) {
        let x = Tensor::from_vec(&[2, 2, 3, 3], data);
        let mut l = Sequential::new().push(LayerKind::BatchNorm2d(BatchNorm2d::new(2)));
        let y = l.forward(&x, true);
        for ch in 0..2 {
            let mut sum = 0.0f32;
            for b in 0..2 {
                for i in 0..9 {
                    sum += y.data()[(b * 2 + ch) * 9 + i];
                }
            }
            prop_assert!((sum / 18.0).abs() < 1e-3, "channel mean {}", sum / 18.0);
        }
    }

    /// Dropout preserves the expectation within tolerance and never changes
    /// the sign of surviving activations.
    #[test]
    fn dropout_preserves_expectation(p in 0.0f32..0.8) {
        let x = Tensor::full(&[4000], 1.0);
        let mut l = Sequential::new().push(LayerKind::Dropout(Dropout::new(p)));
        let y = l.forward(&x, true);
        prop_assert!((y.mean() - 1.0).abs() < 0.12, "mean {} at p {}", y.mean(), p);
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        // inference is identity
        let z = l.forward(&x, false);
        prop_assert_eq!(z.data(), x.data());
    }

    /// Sigmoid maps anything into (0, 1) monotonically.
    #[test]
    fn sigmoid_bounded_monotone(a in -20.0f32..20.0, b in -20.0f32..20.0) {
        let sa = ops::sigmoid_scalar(a);
        let sb = ops::sigmoid_scalar(b);
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
    }
}
