//! Scene arrival process: *when* target objects are on camera.
//!
//! Anomalous events are rare and bursty (§2.3): a traffic jam is minutes of
//! continuous target frames separated by long quiet gaps, not i.i.d. coin
//! flips per frame. We model scene occupancy with a renewal process whose
//! scene lengths are geometric, plus a long-run controller that steers the
//! achieved target-object ratio (TOR, Eq. 1) to a requested value — so every
//! experiment can dial in the exact TOR the paper's figures sweep.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Phase of the scene process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenePhase {
    /// No target objects requested on camera.
    Idle,
    /// A scene is running; target objects are on camera.
    Active,
    /// Scene duration expired; objects are leaving the frame.
    Draining,
}

/// Generates scene start/stop decisions so the long-run fraction of
/// target-object frames converges to `target_tor`.
#[derive(Debug, Clone)]
pub struct SceneProcess {
    /// Requested long-run TOR in `[0, 1]`.
    pub target_tor: f64,
    /// Mean scene duration in frames (geometric).
    pub mean_scene_frames: f64,
    phase: ScenePhase,
    frames_total: u64,
    frames_active: u64,
    scene_left: u64,
    scenes_started: u64,
}

impl SceneProcess {
    pub fn new(target_tor: f64, mean_scene_frames: f64) -> Self {
        assert!((0.0..=1.0).contains(&target_tor), "TOR must be in [0,1]");
        assert!(mean_scene_frames >= 1.0, "scenes must last ≥ 1 frame");
        SceneProcess {
            target_tor,
            mean_scene_frames,
            phase: ScenePhase::Idle,
            frames_total: 0,
            frames_active: 0,
            scene_left: 0,
            scenes_started: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> ScenePhase {
        self.phase
    }

    /// Number of scenes started so far (increments on every scene start,
    /// including in-place renewals at TOR 1.0). Lets the generator redraw
    /// per-scene properties such as the crowd size.
    pub fn scenes_started(&self) -> u64 {
        self.scenes_started
    }

    /// Change the target TOR mid-stream (e.g. a rush-hour burst, §5.5
    /// "Target Object Rate Sensitivity"). Resets the controller's history so
    /// the new regime takes effect immediately instead of being averaged
    /// against the old one.
    pub fn set_target(&mut self, tor: f64) {
        assert!((0.0..=1.0).contains(&tor), "TOR must be in [0,1]");
        if (tor - self.target_tor).abs() > f64::EPSILON {
            self.target_tor = tor;
            self.frames_total = 0;
            self.frames_active = 0;
        }
    }

    /// Achieved active-frame fraction so far.
    pub fn achieved(&self) -> f64 {
        if self.frames_total == 0 {
            0.0
        } else {
            self.frames_active as f64 / self.frames_total as f64
        }
    }

    /// Advance one frame. `target_visible` reports whether any target object
    /// was actually visible in the frame just produced (drain tails keep
    /// objects visible after the nominal scene ends, and the controller must
    /// account for them). Returns the phase for the *next* frame.
    pub fn step(&mut self, target_visible: bool, rng: &mut impl Rng) -> ScenePhase {
        self.frames_total += 1;
        if target_visible {
            self.frames_active += 1;
        }

        match self.phase {
            ScenePhase::Idle => {
                if self.target_tor >= 1.0 {
                    self.start_scene(rng);
                } else if self.target_tor > 0.0 {
                    // Proportional controller: the further below target the
                    // achieved TOR is, the likelier a scene starts. The
                    // baseline rate keeps scenes arriving even at equilibrium.
                    let deficit = self.target_tor - self.achieved();
                    let base = self.target_tor
                        / (self.mean_scene_frames * (1.0 - self.target_tor).max(1e-3));
                    let p = (base + 4.0 * deficit.max(0.0)).clamp(0.0, 1.0);
                    if rng.gen_bool(p) {
                        self.start_scene(rng);
                    }
                }
            }
            ScenePhase::Active => {
                if self.scene_left == 0 {
                    if self.target_tor >= 1.0 {
                        // Continuous occupancy: renew the scene in place so
                        // TOR-1.0 streams never go dark between scenes.
                        self.start_scene(rng);
                    } else {
                        self.phase = ScenePhase::Draining;
                    }
                } else {
                    self.scene_left -= 1;
                    // Stop early if we are overshooting the target.
                    let slack = (self.target_tor * 0.08).max(0.01);
                    if self.target_tor < 1.0 && self.achieved() > self.target_tor + slack {
                        self.phase = ScenePhase::Draining;
                    }
                }
            }
            ScenePhase::Draining => {
                if !target_visible {
                    self.phase = ScenePhase::Idle;
                }
            }
        }
        self.phase
    }

    fn start_scene(&mut self, rng: &mut impl Rng) {
        self.phase = ScenePhase::Active;
        self.scenes_started += 1;
        // geometric duration with the configured mean
        let p = 1.0 / self.mean_scene_frames;
        let mut d = 1u64;
        while !rng.gen_bool(p.clamp(1e-6, 1.0)) && d < 100_000 {
            d += 1;
        }
        self.scene_left = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run_tor(target: f64, frames: usize) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut p = SceneProcess::new(target, 60.0);
        let mut visible = false;
        let mut active_frames = 0usize;
        for _ in 0..frames {
            // model: objects visible exactly while Active or Draining for a
            // short 5-frame tail
            let phase = p.step(visible, &mut rng);
            visible = matches!(phase, ScenePhase::Active);
            if visible {
                active_frames += 1;
            }
        }
        active_frames as f64 / frames as f64
    }

    #[test]
    fn tor_converges_low() {
        let t = run_tor(0.1, 20_000);
        assert!((t - 0.1).abs() < 0.03, "achieved {}", t);
    }

    #[test]
    fn tor_converges_mid() {
        let t = run_tor(0.4, 20_000);
        assert!((t - 0.4).abs() < 0.05, "achieved {}", t);
    }

    #[test]
    fn tor_zero_never_starts() {
        let t = run_tor(0.0, 5_000);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn tor_one_always_active() {
        let t = run_tor(1.0, 5_000);
        assert!(t > 0.99, "achieved {}", t);
    }

    #[test]
    fn scenes_are_bursty_not_iid() {
        // With mean scene length 60, runs of consecutive active frames should
        // be far longer than an i.i.d. process at the same rate would give.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut p = SceneProcess::new(0.2, 60.0);
        let mut visible = false;
        let mut runs = Vec::new();
        let mut cur = 0usize;
        for _ in 0..50_000 {
            let phase = p.step(visible, &mut rng);
            visible = matches!(phase, ScenePhase::Active);
            if visible {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len().max(1) as f64;
        // i.i.d. at rate 0.2 would give mean run ≈ 1.25
        assert!(mean_run > 10.0, "mean run {}", mean_run);
    }

    #[test]
    #[should_panic(expected = "TOR")]
    fn invalid_tor_panics() {
        let _ = SceneProcess::new(1.5, 10.0);
    }
}
