//! FNV-1a 64-bit checksums over frame payloads and clip records.
//!
//! One tiny dependency-free hash shared by the ingest layer (payload
//! validation of frames arriving from an unreliable source, [`crate::source`])
//! and the clip container ([`crate::storage`], per-record integrity in the
//! FFSV2 format). FNV-1a is not cryptographic — the threat model is torn
//! writes and bit rot, not adversaries.

use crate::frame::Frame;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash `bytes` from the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a hash from a prior state (for multi-field records).
pub fn fnv1a_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Checksum of a frame's pixel payload, bound to its geometry and format so
/// a payload of the right length but the wrong shape still mismatches.
pub fn frame_checksum(f: &Frame) -> u64 {
    let mut h = fnv1a_continue(FNV_OFFSET, &[f.format.bytes_per_pixel() as u8]);
    h = fnv1a_continue(h, &(f.width as u64).to_le_bytes());
    h = fnv1a_continue(h, &(f.height as u64).to_le_bytes());
    fnv1a_continue(h, &f.data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // published FNV-1a 64 test vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn continuation_equals_one_shot() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_continue(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn frame_checksum_sees_payload_and_geometry() {
        let a = Frame::gray8(0, 0, 0, 4, 2, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let b = Frame::gray8(0, 0, 0, 4, 2, vec![1, 2, 3, 4, 5, 6, 7, 9]);
        let c = Frame::gray8(0, 0, 0, 2, 4, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(frame_checksum(&a), frame_checksum(&b));
        assert_ne!(frame_checksum(&a), frame_checksum(&c));
        // metadata that is not part of the payload does not affect the sum
        let d = Frame::gray8(9, 77, 1234, 4, 2, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(frame_checksum(&a), frame_checksum(&d));
    }
}
