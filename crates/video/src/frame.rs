//! Video frames and per-frame metadata.
//!
//! Frames travel through every pipeline stage, so the pixel payload is stored
//! in a reference-counted [`bytes::Bytes`] buffer: cloning a frame to hand it
//! to the next queue is O(1) and never copies pixels.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Pixel layout of a frame buffer.
///
/// The cascade's filters all operate on luminance; the generator produces
/// `Gray8` by default and `Rgb8` (interleaved, row-major) in color mode —
/// filters call [`Frame::luma`] and work on either.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PixelFormat {
    #[default]
    Gray8,
    Rgb8,
}

impl PixelFormat {
    /// Bytes per pixel.
    pub fn bytes_per_pixel(&self) -> usize {
        match self {
            PixelFormat::Gray8 => 1,
            PixelFormat::Rgb8 => 3,
        }
    }
}

/// Identifier of a video stream within an FFS-VA instance.
pub type StreamId = u32;

/// A single video frame: metadata plus a shared pixel buffer.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Which stream the frame belongs to.
    pub stream: StreamId,
    /// Monotonic per-stream sequence number (0-based).
    pub seq: u64,
    /// Presentation timestamp in milliseconds since stream start.
    pub pts_ms: u64,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Pixel format of `data`.
    pub format: PixelFormat,
    /// Shared pixel payload (row-major).
    pub data: Bytes,
}

impl Frame {
    /// Construct a Gray8 frame from a raw luminance buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn gray8(
        stream: StreamId,
        seq: u64,
        pts_ms: u64,
        width: usize,
        height: usize,
        data: Vec<u8>,
    ) -> Self {
        assert_eq!(data.len(), width * height, "gray8 buffer size mismatch");
        Frame {
            stream,
            seq,
            pts_ms,
            width,
            height,
            format: PixelFormat::Gray8,
            data: Bytes::from(data),
        }
    }

    /// Construct an Rgb8 frame from an interleaved RGB buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height * 3`.
    pub fn rgb8(
        stream: StreamId,
        seq: u64,
        pts_ms: u64,
        width: usize,
        height: usize,
        data: Vec<u8>,
    ) -> Self {
        assert_eq!(data.len(), width * height * 3, "rgb8 buffer size mismatch");
        Frame {
            stream,
            seq,
            pts_ms,
            width,
            height,
            format: PixelFormat::Rgb8,
            data: Bytes::from(data),
        }
    }

    /// The frame's luminance plane: borrowed for Gray8, computed (BT.601)
    /// for Rgb8. Everything in the cascade consumes this.
    pub fn luma(&self) -> std::borrow::Cow<'_, [u8]> {
        match self.format {
            PixelFormat::Gray8 => std::borrow::Cow::Borrowed(&self.data),
            PixelFormat::Rgb8 => std::borrow::Cow::Owned(
                self.data
                    .chunks_exact(3)
                    .map(|p| {
                        (0.299 * p[0] as f32 + 0.587 * p[1] as f32 + 0.114 * p[2] as f32)
                            .round()
                            .clamp(0.0, 255.0) as u8
                    })
                    .collect(),
            ),
        }
    }

    /// RGB triple at `(x, y)` (Gray8 frames return the luma in each channel).
    pub fn at_rgb(&self, x: usize, y: usize) -> (u8, u8, u8) {
        match self.format {
            PixelFormat::Gray8 => {
                let v = self.data[y * self.width + x];
                (v, v, v)
            }
            PixelFormat::Rgb8 => {
                let i = (y * self.width + x) * 3;
                (self.data[i], self.data[i + 1], self.data[i + 2])
            }
        }
    }

    /// Luma value at `(x, y)`.
    ///
    /// # Panics
    /// Only valid on Gray8 frames; use [`Frame::at_rgb`] or [`Frame::luma`]
    /// for color frames.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        debug_assert_eq!(self.format, PixelFormat::Gray8);
        self.data[y * self.width + x]
    }

    /// Number of pixels.
    #[inline]
    pub fn num_pixels(&self) -> usize {
        self.width * self.height
    }

    /// The pixel buffer as a slice.
    #[inline]
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Luminance converted to `f32` in `[0, 1]`.
    pub fn to_f32(&self) -> Vec<f32> {
        self.luma().iter().map(|&p| p as f32 / 255.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray8_frame_indexing() {
        let f = Frame::gray8(1, 0, 0, 3, 2, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(f.at(0, 0), 0);
        assert_eq!(f.at(2, 0), 2);
        assert_eq!(f.at(0, 1), 3);
        assert_eq!(f.num_pixels(), 6);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn gray8_wrong_size_panics() {
        let _ = Frame::gray8(0, 0, 0, 2, 2, vec![0; 3]);
    }

    #[test]
    fn clone_shares_buffer() {
        let f = Frame::gray8(0, 0, 0, 2, 2, vec![9; 4]);
        let g = f.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(f.data.as_ptr(), g.data.as_ptr());
    }

    #[test]
    fn to_f32_normalizes() {
        let f = Frame::gray8(0, 0, 0, 2, 1, vec![0, 255]);
        let v = f.to_f32();
        assert_eq!(v, vec![0.0, 1.0]);
    }
}

/// Write a frame as a binary netpbm image (PGM/P5 for Gray8, PPM/P6 for
/// Rgb8) — handy for eyeballing what the generator and filters actually see.
pub fn write_pgm(frame: &Frame, path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let magic = match frame.format {
        PixelFormat::Gray8 => "P5",
        PixelFormat::Rgb8 => "P6",
    };
    write!(f, "{}\n{} {}\n255\n", magic, frame.width, frame.height)?;
    f.write_all(frame.pixels())?;
    Ok(())
}

#[cfg(test)]
mod pgm_tests {
    use super::*;

    #[test]
    fn rgb_frame_luma_and_access() {
        // one red, one green, one blue, one white pixel
        let f = Frame::rgb8(
            0,
            0,
            0,
            2,
            2,
            vec![255, 0, 0, 0, 255, 0, 0, 0, 255, 255, 255, 255],
        );
        assert_eq!(f.at_rgb(0, 0), (255, 0, 0));
        assert_eq!(f.at_rgb(1, 1), (255, 255, 255));
        let y = f.luma();
        assert_eq!(y.len(), 4);
        assert_eq!(y[0], 76); // 0.299*255
        assert_eq!(y[1], 150); // 0.587*255
        assert_eq!(y[2], 29); // 0.114*255
        assert_eq!(y[3], 255);
        // green is perceptually brightest
        assert!(y[1] > y[0] && y[0] > y[2]);
    }

    #[test]
    fn gray_luma_is_borrowed() {
        let f = Frame::gray8(0, 0, 0, 2, 1, vec![7, 9]);
        match f.luma() {
            std::borrow::Cow::Borrowed(b) => assert_eq!(b, &[7, 9]),
            _ => panic!("gray frames must not copy"),
        }
    }

    #[test]
    fn ppm_written_for_rgb() {
        let f = Frame::rgb8(0, 0, 0, 1, 1, vec![1, 2, 3]);
        let path = std::env::temp_dir().join("ffsva_ppm_test.ppm");
        write_pgm(&f, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n1 1\n255\n"));
        assert_eq!(&bytes[bytes.len() - 3..], &[1, 2, 3]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pgm_has_header_and_payload() {
        let f = Frame::gray8(0, 0, 0, 3, 2, vec![10, 20, 30, 40, 50, 60]);
        let path = std::env::temp_dir().join("ffsva_pgm_test.pgm");
        write_pgm(&f, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(&bytes[bytes.len() - 6..], &[10, 20, 30, 40, 50, 60]);
        std::fs::remove_file(path).unwrap();
    }
}
