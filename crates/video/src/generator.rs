//! The synthetic video stream generator: fixed-viewpoint background + scene
//! arrival process + moving objects, producing labeled Gray8 frames.

use crate::arrival::{ScenePhase, SceneProcess};
use crate::frame::{Frame, StreamId};
use crate::objects::MovingObject;
use crate::scene::{Background, BackgroundKind};
use crate::truth::{GroundTruth, ObjectClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic surveillance stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Display name ("jackson", "coral", …).
    pub name: String,
    /// Nominal (metadata) resolution, as reported in Table 1.
    pub nominal_width: usize,
    pub nominal_height: usize,
    /// Rendering resolution of the generated pixels. Filters resize anyway
    /// (SDD 100×100, SNM 50×50), so rendering below nominal preserves
    /// behaviour while keeping generation cheap.
    pub render_width: usize,
    pub render_height: usize,
    /// Frames per second.
    pub fps: u32,
    /// The user's target object class for this stream.
    pub target: ObjectClass,
    /// Desired long-run target-object ratio (Eq. 1).
    pub tor: f64,
    /// Optional TOR burst: `(start_frame, end_frame, tor)` overrides the
    /// base TOR inside the window — a rush hour, a parade, an incident
    /// (§5.5 "a sudden increase in TORs ... can lead to poor filtering
    /// efficiency").
    pub tor_spike: Option<(u64, u64, f64)>,
    /// Mean scene duration in frames.
    pub mean_scene_frames: f64,
    /// Min/max target objects per scene.
    pub objects_per_scene: (usize, usize),
    /// Normalized object width range.
    pub object_w: (f32, f32),
    /// Normalized object height range.
    pub object_h: (f32, f32),
    /// Normalized object speed per frame.
    pub object_speed: f32,
    /// Ambient scene motion: blobs of luminance change that are *not*
    /// objects (cloud shadows, foliage, fish, reflections). They raise the
    /// SDD distance — real daytime scenes keep the SDD busy (Fig. 5: "SDD
    /// filters out few frames due to frequent movement and scene changes in
    /// the daytime") — but carry no ground-truth objects.
    pub ambient_blobs: usize,
    /// Ambient blob luminance offset range (gray levels).
    pub ambient_intensity: (f32, f32),
    /// Ambient blob size range (normalized).
    pub ambient_size: (f32, f32),
    /// Per-frame probability of a non-target (distractor) object entering.
    pub distractor_rate: f64,
    /// Distractor classes drawn uniformly when one spawns.
    pub distractor_classes: Vec<ObjectClass>,
    /// Background/illumination model.
    pub background: BackgroundKind,
    /// Sensor noise std-dev in gray levels.
    pub noise_sigma: f32,
    /// Produce interleaved Rgb8 frames instead of Gray8 (filters consume the
    /// luminance plane either way; color mode is for downstream consumers
    /// and end-to-end realism).
    #[serde(default)]
    pub color: bool,
    /// RNG seed; streams with different seeds get different scenes.
    pub seed: u64,
}

impl StreamConfig {
    /// Return a copy with a different TOR (used by the TOR sweeps).
    pub fn with_tor(mut self, tor: f64) -> Self {
        self.tor = tor;
        self
    }

    /// Return a copy with a TOR burst in `[start, end)` frames.
    pub fn with_tor_spike(mut self, start: u64, end: u64, tor: f64) -> Self {
        self.tor_spike = Some((start, end, tor));
        self
    }

    /// Return a copy with a different seed (used to build many streams).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated frame together with its ground truth.
#[derive(Debug, Clone)]
pub struct LabeledFrame {
    pub frame: Frame,
    pub truth: GroundTruth,
}

/// An infinite synthetic video stream.
pub struct VideoStream {
    pub id: StreamId,
    pub cfg: StreamConfig,
    background: Background,
    process: SceneProcess,
    targets: Vec<MovingObject>,
    distractors: Vec<MovingObject>,
    ambient: Vec<MovingObject>,
    /// Number of target objects the current scene tries to keep on camera.
    scene_size: usize,
    /// Scene-start counter last seen from the arrival process.
    seen_scenes: u64,
    seq: u64,
    rng: StdRng,
}

impl VideoStream {
    pub fn new(id: StreamId, cfg: StreamConfig) -> Self {
        let background = Background::new(
            cfg.render_width,
            cfg.render_height,
            cfg.background,
            cfg.seed ^ 0x5EED_BA5E,
        );
        let process = SceneProcess::new(cfg.tor, cfg.mean_scene_frames);
        let rng = StdRng::seed_from_u64(cfg.seed);
        VideoStream {
            id,
            cfg,
            background,
            process,
            targets: Vec::new(),
            distractors: Vec::new(),
            ambient: Vec::new(),
            scene_size: 0,
            seen_scenes: 0,
            seq: 0,
            rng,
        }
    }

    fn spawn_scene(&mut self) {
        let (lo, hi) = self.cfg.objects_per_scene;
        let k = if hi > lo {
            self.rng.gen_range(lo..=hi)
        } else {
            lo
        };
        self.scene_size = k;
        for i in 0..k {
            let w = self
                .rng
                .gen_range(self.cfg.object_w.0..=self.cfg.object_w.1);
            let h = self
                .rng
                .gen_range(self.cfg.object_h.0..=self.cfg.object_h.1);
            // The first object of a scene always *enters* (partial
            // appearance, §3.3); the rest are a mix.
            let obj = if i == 0 || self.rng.gen_bool(0.4) {
                MovingObject::spawn_entering(
                    self.cfg.target,
                    w,
                    h,
                    self.cfg.object_speed,
                    &mut self.rng,
                )
            } else {
                MovingObject::spawn_inside(
                    self.cfg.target,
                    w,
                    h,
                    self.cfg.object_speed,
                    &mut self.rng,
                )
            };
            self.targets.push(obj);
        }
    }

    /// Produce the next frame.
    pub fn next_frame(&mut self) -> LabeledFrame {
        // Apply any scheduled TOR burst.
        if let Some((start, end, spike_tor)) = self.cfg.tor_spike {
            let target = if (start..end).contains(&self.seq) {
                spike_tor
            } else {
                self.cfg.tor
            };
            self.process.set_target(target);
        }
        let (w, h) = (self.cfg.render_width, self.cfg.render_height);
        let illum = self.background.illumination(self.seq, &mut self.rng);

        // --- advance world state -------------------------------------------------
        let phase = self.process.phase();
        match phase {
            ScenePhase::Active => {
                // Keep the scene populated at its drawn size: objects that
                // wander off camera are replaced by new ones entering.
                while self.targets.len() < self.scene_size {
                    let wo = self
                        .rng
                        .gen_range(self.cfg.object_w.0..=self.cfg.object_w.1);
                    let ho = self
                        .rng
                        .gen_range(self.cfg.object_h.0..=self.cfg.object_h.1);
                    self.targets.push(MovingObject::spawn_entering(
                        self.cfg.target,
                        wo,
                        ho,
                        self.cfg.object_speed,
                        &mut self.rng,
                    ));
                }
            }
            ScenePhase::Draining => {
                for o in &mut self.targets {
                    o.head_out();
                    // drain faster than normal travel
                    o.vx *= 1.2;
                }
            }
            ScenePhase::Idle => {}
        }

        for o in &mut self.targets {
            o.step();
        }
        self.targets.retain(|o| !o.is_gone());

        // Ambient motion blobs: keep the configured population wandering.
        while self.ambient.len() < self.cfg.ambient_blobs {
            let aw = self
                .rng
                .gen_range(self.cfg.ambient_size.0..=self.cfg.ambient_size.1);
            let ah = self
                .rng
                .gen_range(self.cfg.ambient_size.0..=self.cfg.ambient_size.1);
            let mut blob = MovingObject::spawn_inside(
                crate::truth::ObjectClass::Cat, // shape only; never labeled
                aw,
                ah,
                self.cfg.object_speed * 0.5,
                &mut self.rng,
            );
            let mag = self
                .rng
                .gen_range(self.cfg.ambient_intensity.0..=self.cfg.ambient_intensity.1);
            blob.intensity = if self.rng.gen_bool(0.5) { mag } else { -mag };
            self.ambient.push(blob);
        }
        for b in &mut self.ambient {
            b.step();
        }
        self.ambient.retain(|b| !b.is_gone());

        // Distractors (non-target classes) wander through at a low rate.
        if !self.cfg.distractor_classes.is_empty()
            && self.distractors.len() < 2
            && self.rng.gen_bool(self.cfg.distractor_rate)
        {
            let ci = self.rng.gen_range(0..self.cfg.distractor_classes.len());
            let class = self.cfg.distractor_classes[ci];
            let dw = self.rng.gen_range(0.03..0.08);
            let dh = self.rng.gen_range(0.06..0.14);
            self.distractors.push(MovingObject::spawn_entering(
                class,
                dw,
                dh,
                self.cfg.object_speed * 0.7,
                &mut self.rng,
            ));
        }
        for o in &mut self.distractors {
            // distractors pass through: head for the exit after a while
            if o.age == 150 {
                o.head_out();
            }
            o.step();
        }
        self.distractors.retain(|o| !(o.age > 5 && o.is_gone()));

        // --- render --------------------------------------------------------------
        // Daylight white balance for the color path (warm highlights).
        const BG_GAIN: [f32; 3] = [1.03, 1.00, 0.94];
        let mut buf = vec![0u8; w * h];
        let mut planes: Option<[Vec<u8>; 3]> = None;
        self.background
            .render_into(&mut buf, illum, self.cfg.noise_sigma, &mut self.rng);
        if self.cfg.color {
            let mut ps: [Vec<u8>; 3] = [vec![0; w * h], vec![0; w * h], vec![0; w * h]];
            for (gain, plane) in BG_GAIN.iter().zip(ps.iter_mut()) {
                self.background.render_into(
                    plane,
                    illum * gain,
                    self.cfg.noise_sigma,
                    &mut self.rng,
                );
            }
            planes = Some(ps);
        }
        for b in &self.ambient {
            b.render_into(&mut buf, w, h, illum.max(0.4));
            if let Some(ps) = planes.as_mut() {
                for plane in ps.iter_mut() {
                    b.render_into(plane, w, h, illum.max(0.4));
                }
            }
        }
        for o in self.distractors.iter().chain(self.targets.iter()) {
            o.render_into(&mut buf, w, h, illum.max(0.4));
            if let Some(ps) = planes.as_mut() {
                let tint = MovingObject::class_tint(o.class);
                for (gain, plane) in tint.iter().zip(ps.iter_mut()) {
                    o.render_into_gain(plane, w, h, illum.max(0.4), *gain);
                }
            }
        }

        let truth = GroundTruth {
            objects: self
                .targets
                .iter()
                .chain(self.distractors.iter())
                .map(|o| o.to_gt())
                .collect(),
        };
        let target_visible = truth.has(self.cfg.target);

        let pts = self.seq * 1000 / self.cfg.fps.max(1) as u64;
        let frame = match planes {
            Some(ps) => {
                let mut rgb = Vec::with_capacity(w * h * 3);
                for ((r, g), b) in ps[0].iter().zip(ps[1].iter()).zip(ps[2].iter()) {
                    rgb.push(*r);
                    rgb.push(*g);
                    rgb.push(*b);
                }
                Frame::rgb8(self.id, self.seq, pts, w, h, rgb)
            }
            None => Frame::gray8(self.id, self.seq, pts, w, h, buf),
        };
        self.seq += 1;

        // --- drive the arrival process -------------------------------------------
        let next_phase = self.process.step(target_visible, &mut self.rng);
        if self.process.scenes_started() != self.seen_scenes {
            self.seen_scenes = self.process.scenes_started();
            if next_phase == ScenePhase::Active {
                // New scene: redraw the crowd size; spawn a fresh batch only
                // when the stage is empty (in-place renewals at TOR 1.0 keep
                // the current objects and let the population drift to the
                // new size via respawns and departures).
                if self.targets.is_empty() {
                    self.spawn_scene();
                } else {
                    let (lo, hi) = self.cfg.objects_per_scene;
                    self.scene_size = if hi > lo {
                        self.rng.gen_range(lo..=hi)
                    } else {
                        lo
                    };
                }
            }
        }

        LabeledFrame { frame, truth }
    }

    /// Generate `n` consecutive labeled frames.
    pub fn clip(&mut self, n: usize) -> Vec<LabeledFrame> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

impl Iterator for VideoStream {
    type Item = LabeledFrame;
    fn next(&mut self) -> Option<LabeledFrame> {
        Some(self.next_frame())
    }
}

/// Measured TOR of a clip for a target class (Eq. 1).
pub fn measured_tor(clip: &[LabeledFrame], target: ObjectClass) -> f64 {
    if clip.is_empty() {
        return 0.0;
    }
    let hits = clip.iter().filter(|lf| lf.truth.has(target)).count();
    hits as f64 / clip.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn stream_produces_sequential_frames() {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.3, 1);
        let mut s = VideoStream::new(7, cfg);
        let clip = s.clip(10);
        assert_eq!(clip.len(), 10);
        for (i, lf) in clip.iter().enumerate() {
            assert_eq!(lf.frame.seq, i as u64);
            assert_eq!(lf.frame.stream, 7);
        }
    }

    #[test]
    fn measured_tor_tracks_config() {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.25, 3);
        let mut s = VideoStream::new(0, cfg);
        let clip = s.clip(6000);
        let tor = measured_tor(&clip, ObjectClass::Car);
        assert!((tor - 0.25).abs() < 0.07, "measured TOR {}", tor);
    }

    #[test]
    fn zero_tor_stream_has_no_targets() {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.0, 5);
        let mut s = VideoStream::new(0, cfg);
        let clip = s.clip(500);
        assert_eq!(measured_tor(&clip, ObjectClass::Car), 0.0);
    }

    #[test]
    fn full_tor_stream_is_mostly_target() {
        let cfg = workloads::test_tiny(ObjectClass::Person, 1.0, 5);
        let mut s = VideoStream::new(0, cfg);
        let clip = s.clip(1000);
        let tor = measured_tor(&clip, ObjectClass::Person);
        assert!(tor > 0.95, "measured TOR {}", tor);
    }

    #[test]
    fn scenes_begin_with_partial_appearance() {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.3, 11);
        let mut s = VideoStream::new(0, cfg);
        let clip = s.clip(4000);
        // find scene starts: frame t has target, frame t-1 does not
        let mut partial_starts = 0usize;
        let mut starts = 0usize;
        for t in 1..clip.len() {
            if clip[t].truth.has(ObjectClass::Car) && !clip[t - 1].truth.has(ObjectClass::Car) {
                starts += 1;
                let complete = clip[t].truth.count_complete(ObjectClass::Car);
                let visible = clip[t].truth.count(ObjectClass::Car);
                if visible > complete {
                    partial_starts += 1;
                }
            }
        }
        assert!(starts > 3, "need several scenes, got {}", starts);
        assert!(
            partial_starts * 2 >= starts,
            "most scene starts should be partial: {}/{}",
            partial_starts,
            starts
        );
    }

    #[test]
    fn frames_differ_between_scene_and_background() {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.5, 2);
        let mut s = VideoStream::new(0, cfg);
        let clip = s.clip(2000);
        let bg_frame = clip.iter().find(|lf| !lf.truth.has(ObjectClass::Car));
        let tg_frame = clip
            .iter()
            .find(|lf| lf.truth.count_complete(ObjectClass::Car) > 0);
        let (bg, tg) = (bg_frame.expect("bg frame"), tg_frame.expect("target frame"));
        // mean absolute difference should be clearly larger than noise
        let mad: f64 = bg
            .frame
            .pixels()
            .iter()
            .zip(tg.frame.pixels().iter())
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / bg.frame.num_pixels() as f64;
        assert!(mad > 1.0, "mad {}", mad);
    }

    #[test]
    fn tor_spike_raises_target_density_in_window() {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.1, 77).with_tor_spike(1000, 2000, 0.9);
        let mut s = VideoStream::new(0, cfg);
        let clip = s.clip(3000);
        let tor_of = |lo: usize, hi: usize| measured_tor(&clip[lo..hi], ObjectClass::Car);
        let before = tor_of(0, 1000);
        let during = tor_of(1050, 2000); // skip the ramp-in
        let after = tor_of(2100, 3000);
        assert!(during > 0.6, "during {}", during);
        assert!(before < 0.3, "before {}", before);
        assert!(after < 0.4, "after {}", after);
    }

    #[test]
    fn color_mode_produces_rgb_with_consistent_truth() {
        use crate::frame::PixelFormat;
        let mut cfg = workloads::test_tiny(ObjectClass::Car, 0.5, 7);
        cfg.color = true;
        let mut s = VideoStream::new(0, cfg);
        let clip = s.clip(400);
        assert!(clip.iter().all(|lf| lf.frame.format == PixelFormat::Rgb8));
        assert!(clip
            .iter()
            .all(|lf| lf.frame.pixels().len() == lf.frame.num_pixels() * 3));
        // luma of a target frame still differs clearly from a background frame
        let bg = clip
            .iter()
            .find(|lf| lf.truth.objects.is_empty())
            .expect("bg");
        let tg = clip
            .iter()
            .find(|lf| lf.truth.count_complete(ObjectClass::Car) > 0)
            .expect("target");
        let mad: f64 = bg
            .frame
            .luma()
            .iter()
            .zip(tg.frame.luma().iter())
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / bg.frame.num_pixels() as f64;
        assert!(mad > 1.0, "mad {}", mad);
        // and a car frame actually carries chroma (channels differ)
        let mut chroma = 0u64;
        for y in 0..tg.frame.height {
            for x in 0..tg.frame.width {
                let (r, g, b) = tg.frame.at_rgb(x, y);
                chroma += (r as i32 - b as i32).unsigned_abs() as u64;
                let _ = g;
            }
        }
        assert!(chroma > 0, "color frames must not be gray");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.3, 99);
        let a: Vec<_> = VideoStream::new(0, cfg.clone()).clip(50);
        let b: Vec<_> = VideoStream::new(0, cfg).clip(50);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.frame.pixels(), y.frame.pixels());
            assert_eq!(x.truth.objects.len(), y.truth.objects.len());
        }
    }
}
