//! `ffsva-video` — synthetic surveillance-video workload substrate.
//!
//! The paper evaluates on two day-long webcam recordings (Jackson Hole town
//! square, a coral-reef aquarium). Those recordings are not redistributable,
//! so this crate provides the substitute documented in DESIGN.md §2: a
//! fixed-viewpoint scene generator with
//!
//! * procedural backgrounds with static or day/night illumination,
//! * a bursty scene arrival process whose long-run target-object ratio
//!   (TOR, Eq. 1 of the paper) converges to any requested value,
//! * moving target objects (large sparse vehicles, small dense persons) that
//!   enter and leave the frame — producing the *partial appearance* frames
//!   central to the paper's accuracy analysis (§3.3),
//! * exact per-frame ground truth.
//!
//! ```
//! use ffsva_video::prelude::*;
//!
//! let mut stream = VideoStream::new(0, workloads::jackson());
//! let clip = stream.clip(300);
//! assert_eq!(clip.len(), 300);
//! let tor = measured_tor(&clip, ObjectClass::Car);
//! assert!(tor <= 1.0);
//! ```

pub mod arrival;
pub mod checksum;
pub mod frame;
pub mod generator;
pub mod objects;
pub mod resize;
pub mod scene;
pub mod source;
pub mod storage;
pub mod truth;
pub mod workloads;

pub use arrival::{ScenePhase, SceneProcess};
pub use checksum::{fnv1a, fnv1a_continue, frame_checksum};
pub use frame::{write_pgm, Frame, PixelFormat, StreamId};
pub use generator::{measured_tor, LabeledFrame, StreamConfig, VideoStream};
pub use scene::{Background, BackgroundKind};
pub use source::{
    decode_wire_frame, encode_wire_frame, plan_reconnect, spawn_frame_server, ClipSource,
    FrameServerOptions, FrameSource, GeneratorSource, ReconnectOutcome, ReconnectPolicy,
    SocketSource, SourceAction, SourceEvent, SourceFault, SourceFaultEntry, SourceFaultPlan,
    SourceInjector, SourceItem, Turbulence, UnreliableSource, WireHeader, MAX_WIRE_RECORD,
};
pub use storage::{
    read_clip, write_clip, ClipHeader, ClipIntegrityError, ClipReader, ClipWriter, CLIP_VERSION,
};
pub use truth::{GroundTruth, GtObject, ObjectClass};

/// Common imports for generating workloads.
pub mod prelude {
    pub use crate::checksum::frame_checksum;
    pub use crate::frame::{Frame, StreamId};
    pub use crate::generator::{measured_tor, LabeledFrame, StreamConfig, VideoStream};
    pub use crate::source::{
        ClipSource, FrameSource, GeneratorSource, SourceFault, SourceFaultPlan, UnreliableSource,
    };
    pub use crate::truth::{GroundTruth, GtObject, ObjectClass};
    pub use crate::workloads;
}
