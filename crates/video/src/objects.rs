//! Moving foreground objects: kinematics and rendering.
//!
//! Objects are intensity blobs drawn over the background. Cars are large
//! textured rectangles (window band, wheels); persons are small vertical
//! ellipses. Sizes are normalized to frame dimensions so the same object
//! model works at any rendering resolution.

use crate::truth::{GtObject, ObjectClass};
use rand::Rng;

/// A foreground object moving through the scene.
#[derive(Debug, Clone)]
pub struct MovingObject {
    pub class: ObjectClass,
    /// Normalized center position.
    pub cx: f32,
    pub cy: f32,
    /// Normalized velocity per frame.
    pub vx: f32,
    pub vy: f32,
    /// Normalized size.
    pub w: f32,
    pub h: f32,
    /// Luminance offset against the background, in gray levels (signed).
    pub intensity: f32,
    /// Frames lived so far.
    pub age: u64,
}

impl MovingObject {
    /// Spawn an object just outside a random edge, heading into the frame.
    pub fn spawn_entering(
        class: ObjectClass,
        w: f32,
        h: f32,
        speed: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let from_left = rng.gen_bool(0.5);
        let cy = rng.gen_range(0.25..0.85);
        let (cx, vx) = if from_left {
            (-w / 2.0, speed)
        } else {
            (1.0 + w / 2.0, -speed)
        };
        let vy = rng.gen_range(-0.1..0.1) * speed;
        let intensity = if rng.gen_bool(0.5) {
            rng.gen_range(35.0..80.0)
        } else {
            -rng.gen_range(35.0..80.0)
        };
        MovingObject {
            class,
            cx,
            cy,
            vx,
            vy,
            w,
            h,
            intensity,
            age: 0,
        }
    }

    /// Spawn fully inside the frame (used for dense crowds).
    pub fn spawn_inside(
        class: ObjectClass,
        w: f32,
        h: f32,
        speed: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let cx = rng.gen_range(w / 2.0..1.0 - w / 2.0);
        let cy = rng.gen_range(h / 2.0..1.0 - h / 2.0);
        let ang: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let intensity = if rng.gen_bool(0.5) {
            rng.gen_range(35.0..80.0)
        } else {
            -rng.gen_range(35.0..80.0)
        };
        MovingObject {
            class,
            cx,
            cy,
            vx: ang.cos() * speed,
            vy: ang.sin() * speed * 0.3,
            w,
            h,
            intensity,
            age: 0,
        }
    }

    /// Advance one frame of motion. Objects inside the frame gently bounce
    /// off the top/bottom so they stay in the band of interest.
    pub fn step(&mut self) {
        self.cx += self.vx;
        self.cy += self.vy;
        if self.cy < self.h / 2.0 || self.cy > 1.0 - self.h / 2.0 {
            self.vy = -self.vy;
            self.cy = self.cy.clamp(self.h / 2.0, 1.0 - self.h / 2.0);
        }
        self.age += 1;
    }

    /// Reverse horizontal direction so the object heads toward the nearest
    /// edge (used to clear the scene when a scene interval ends).
    pub fn head_out(&mut self) {
        let toward_right = self.cx >= 0.5;
        let speed = self.vx.abs().max(0.004);
        self.vx = if toward_right { speed } else { -speed };
    }

    /// True once the object is fully outside the frame.
    pub fn is_gone(&self) -> bool {
        self.visible_frac() <= 0.0
    }

    /// Fraction of the object's box inside the frame.
    pub fn visible_frac(&self) -> f32 {
        GtObject::compute_visible_frac(self.cx, self.cy, self.w, self.h)
    }

    /// Ground-truth record for the current position.
    pub fn to_gt(&self) -> GtObject {
        GtObject {
            class: self.class,
            cx: self.cx,
            cy: self.cy,
            w: self.w,
            h: self.h,
            visible_frac: self.visible_frac(),
        }
    }

    /// Per-channel chroma gain of a class (multiplies the luminance delta in
    /// color rendering): vehicles run warm, persons cool — enough chroma for
    /// color consumers while keeping the luma plane close to the gray render.
    pub fn class_tint(class: ObjectClass) -> [f32; 3] {
        match class {
            ObjectClass::Car => [1.10, 1.00, 0.85],
            ObjectClass::Bus => [1.00, 0.95, 1.10],
            ObjectClass::Truck => [0.95, 1.00, 1.00],
            ObjectClass::Person => [0.90, 1.05, 1.10],
            ObjectClass::Dog => [1.05, 1.00, 0.90],
            ObjectClass::Cat => [1.00, 1.00, 1.00],
            ObjectClass::Bicycle => [0.90, 1.10, 0.95],
        }
    }

    /// Draw the object into a single-channel buffer with a gain applied to
    /// its luminance delta (used per color channel).
    pub fn render_into_gain(
        &self,
        buf: &mut [u8],
        width: usize,
        height: usize,
        illum: f32,
        gain: f32,
    ) {
        let mut tinted = self.clone();
        tinted.intensity *= gain;
        tinted.render_into(buf, width, height, illum);
    }

    /// Draw the object into a Gray8 buffer of `width`×`height`.
    pub fn render_into(&self, buf: &mut [u8], width: usize, height: usize, illum: f32) {
        let px_w = (self.w * width as f32).max(1.0);
        let px_h = (self.h * height as f32).max(1.0);
        let x0 = ((self.cx - self.w / 2.0) * width as f32).floor() as isize;
        let y0 = ((self.cy - self.h / 2.0) * height as f32).floor() as isize;
        let x1 = x0 + px_w as isize;
        let y1 = y0 + px_h as isize;
        let delta = self.intensity * illum;
        match self.class {
            ObjectClass::Person | ObjectClass::Dog | ObjectClass::Cat => {
                // Ellipse blob.
                let rx = px_w / 2.0;
                let ry = px_h / 2.0;
                let ccx = (x0 + x1) as f32 / 2.0;
                let ccy = (y0 + y1) as f32 / 2.0;
                for y in y0.max(0)..y1.min(height as isize) {
                    for x in x0.max(0)..x1.min(width as isize) {
                        let dx = (x as f32 - ccx) / rx;
                        let dy = (y as f32 - ccy) / ry;
                        if dx * dx + dy * dy <= 1.0 {
                            let i = y as usize * width + x as usize;
                            buf[i] = (buf[i] as f32 + delta).clamp(0.0, 255.0) as u8;
                        }
                    }
                }
            }
            _ => {
                // Vehicle: body rectangle with a contrasting window band in
                // the upper third and dark wheels row at the bottom.
                for y in y0.max(0)..y1.min(height as isize) {
                    let fy = (y - y0) as f32 / px_h;
                    let band = if fy < 0.35 {
                        -delta * 0.5 // windows contrast against body
                    } else if fy > 0.85 {
                        -40.0 // wheels/shadow, always dark
                    } else {
                        delta
                    };
                    for x in x0.max(0)..x1.min(width as isize) {
                        let i = y as usize * width + x as usize;
                        buf[i] = (buf[i] as f32 + band).clamp(0.0, 255.0) as u8;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn spawn_entering_starts_partially_or_fully_outside() {
        let mut r = rng();
        for _ in 0..20 {
            let o = MovingObject::spawn_entering(ObjectClass::Car, 0.2, 0.15, 0.01, &mut r);
            assert!(o.visible_frac() < 0.6, "visible {}", o.visible_frac());
        }
    }

    #[test]
    fn object_enters_frame_over_time() {
        let mut r = rng();
        let mut o = MovingObject::spawn_entering(ObjectClass::Car, 0.2, 0.15, 0.02, &mut r);
        let initial = o.visible_frac();
        for _ in 0..30 {
            o.step();
        }
        assert!(o.visible_frac() > initial);
        assert!(o.visible_frac() > 0.9);
    }

    #[test]
    fn head_out_eventually_leaves() {
        let mut r = rng();
        let mut o = MovingObject::spawn_inside(ObjectClass::Person, 0.05, 0.1, 0.01, &mut r);
        o.head_out();
        for _ in 0..500 {
            o.step();
            if o.is_gone() {
                return;
            }
        }
        panic!("object never left the frame");
    }

    #[test]
    fn render_changes_pixels_inside_box_only() {
        let mut r = rng();
        let mut o = MovingObject::spawn_inside(ObjectClass::Car, 0.25, 0.25, 0.0, &mut r);
        o.cx = 0.5;
        o.cy = 0.5;
        o.intensity = 60.0;
        let (w, h) = (40usize, 40usize);
        let mut buf = vec![128u8; w * h];
        o.render_into(&mut buf, w, h, 1.0);
        // corner pixel untouched, center pixel changed
        assert_eq!(buf[0], 128);
        assert_ne!(buf[20 * w + 20], 128);
    }

    #[test]
    fn person_renders_as_blob_smaller_than_box() {
        let mut r = rng();
        let mut o = MovingObject::spawn_inside(ObjectClass::Person, 0.5, 0.5, 0.0, &mut r);
        o.cx = 0.5;
        o.cy = 0.5;
        o.intensity = 60.0;
        let (w, h) = (20usize, 20usize);
        let mut buf = vec![100u8; w * h];
        o.render_into(&mut buf, w, h, 1.0);
        let changed = buf.iter().filter(|&&p| p != 100).count();
        // ellipse area ≈ π/4 of the bounding box
        assert!(changed > 0);
        assert!(changed < (w * h * 9) / 10);
    }
}
