//! Frame resizing.
//!
//! Every FFS-VA filter consumes a different input size (SDD 100×100,
//! SNM 50×50, T-YOLO 416×416), so raw frames are resized before each stage
//! (§4.1: resize costs 40 µs / 150 µs / 400 µs respectively).

use crate::frame::Frame;

/// Nearest-neighbour resize of a Gray8 buffer.
pub fn resize_nearest(src: &[u8], sw: usize, sh: usize, dw: usize, dh: usize) -> Vec<u8> {
    assert_eq!(src.len(), sw * sh, "source buffer size mismatch");
    assert!(dw > 0 && dh > 0, "destination must be non-empty");
    let mut out = vec![0u8; dw * dh];
    for y in 0..dh {
        let sy = (y * sh) / dh;
        let src_row = &src[sy * sw..(sy + 1) * sw];
        let dst_row = &mut out[y * dw..(y + 1) * dw];
        for (x, d) in dst_row.iter_mut().enumerate() {
            let sx = (x * sw) / dw;
            *d = src_row[sx];
        }
    }
    out
}

/// Bilinear resize of a Gray8 buffer.
pub fn resize_bilinear(src: &[u8], sw: usize, sh: usize, dw: usize, dh: usize) -> Vec<u8> {
    let mut out = Vec::new();
    resize_bilinear_into(src, sw, sh, dw, dh, &mut out);
    out
}

/// Bilinear resize into a caller-owned buffer (resized and overwritten), so
/// per-worker scratch can be reused across frames without reallocating.
pub fn resize_bilinear_into(
    src: &[u8],
    sw: usize,
    sh: usize,
    dw: usize,
    dh: usize,
    out: &mut Vec<u8>,
) {
    assert_eq!(src.len(), sw * sh, "source buffer size mismatch");
    assert!(dw > 0 && dh > 0, "destination must be non-empty");
    out.clear();
    out.resize(dw * dh, 0);
    let (x_ratio, y_ratio) = bilinear_ratios(sw, sh, dw, dh);
    for y in 0..dh {
        let (y0, y1, wy) = bilinear_axis(y, y_ratio, sh);
        for x in 0..dw {
            let (x0, x1, wx) = bilinear_axis(x, x_ratio, sw);
            let v = bilinear_sample(src, sw, y0, y1, wy, x0, x1, wx);
            out[y * dw + x] = v.round().clamp(0.0, 255.0) as u8;
        }
    }
}

/// Bilinear resize of a Gray8 buffer straight to normalized `f32` in `[0, 1]`,
/// without rounding through `u8` — keeps the sub-LSB precision that
/// `SddFilter::calibrate` bakes into δ_diff. Same sample points and weights as
/// [`resize_bilinear`], so the two stay within 1/255 of each other.
pub fn resize_bilinear_f32_into(
    src: &[u8],
    sw: usize,
    sh: usize,
    dw: usize,
    dh: usize,
    out: &mut Vec<f32>,
) {
    assert_eq!(src.len(), sw * sh, "source buffer size mismatch");
    assert!(dw > 0 && dh > 0, "destination must be non-empty");
    out.clear();
    out.resize(dw * dh, 0.0);
    let (x_ratio, y_ratio) = bilinear_ratios(sw, sh, dw, dh);
    for y in 0..dh {
        let (y0, y1, wy) = bilinear_axis(y, y_ratio, sh);
        for x in 0..dw {
            let (x0, x1, wx) = bilinear_axis(x, x_ratio, sw);
            out[y * dw + x] = bilinear_sample(src, sw, y0, y1, wy, x0, x1, wx) / 255.0;
        }
    }
}

/// Edge-aligned scale factors shared by the u8 and f32 bilinear paths.
fn bilinear_ratios(sw: usize, sh: usize, dw: usize, dh: usize) -> (f32, f32) {
    let x_ratio = if dw > 1 {
        (sw - 1) as f32 / (dw - 1) as f32
    } else {
        0.0
    };
    let y_ratio = if dh > 1 {
        (sh - 1) as f32 / (dh - 1) as f32
    } else {
        0.0
    };
    (x_ratio, y_ratio)
}

/// Source taps and interpolation weight for one destination coordinate.
#[inline]
fn bilinear_axis(d: usize, ratio: f32, src_len: usize) -> (usize, usize, f32) {
    let f = d as f32 * ratio;
    let lo = f.floor() as usize;
    let hi = (lo + 1).min(src_len - 1);
    (lo, hi, f - lo as f32)
}

#[inline]
#[allow(clippy::too_many_arguments)] // tap coordinates come straight from bilinear_axis
fn bilinear_sample(
    src: &[u8],
    sw: usize,
    y0: usize,
    y1: usize,
    wy: f32,
    x0: usize,
    x1: usize,
    wx: f32,
) -> f32 {
    let p00 = src[y0 * sw + x0] as f32;
    let p01 = src[y0 * sw + x1] as f32;
    let p10 = src[y1 * sw + x0] as f32;
    let p11 = src[y1 * sw + x1] as f32;
    let top = p00 + (p01 - p00) * wx;
    let bot = p10 + (p11 - p10) * wx;
    top + (bot - top) * wy
}

/// Resize a frame's luminance plane to `(dw, dh)` with bilinear filtering.
/// Color frames are converted to luma first — every filter in the cascade
/// works on luminance.
pub fn resize_frame(frame: &Frame, dw: usize, dh: usize) -> Vec<u8> {
    let mut out = Vec::new();
    resize_frame_into(frame, dw, dh, &mut out);
    out
}

/// [`resize_frame`] into a caller-owned buffer.
pub fn resize_frame_into(frame: &Frame, dw: usize, dh: usize, out: &mut Vec<u8>) {
    resize_bilinear_into(&frame.luma(), frame.width, frame.height, dw, dh, out);
}

/// Resize a frame and normalize to `f32` in `[0, 1]` (filter input format).
/// Computes the f32 path directly — no intermediate `u8` quantization, no
/// second allocation.
pub fn resize_frame_f32(frame: &Frame, dw: usize, dh: usize) -> Vec<f32> {
    let mut out = Vec::new();
    resize_frame_f32_into(frame, dw, dh, &mut out);
    out
}

/// [`resize_frame_f32`] into a caller-owned buffer.
pub fn resize_frame_f32_into(frame: &Frame, dw: usize, dh: usize, out: &mut Vec<f32>) {
    resize_bilinear_f32_into(&frame.luma(), frame.width, frame.height, dw, dh, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_identity() {
        let src = vec![1u8, 2, 3, 4];
        assert_eq!(resize_nearest(&src, 2, 2, 2, 2), src);
    }

    #[test]
    fn nearest_upscale_2x() {
        let src = vec![10u8, 20, 30, 40];
        let out = resize_nearest(&src, 2, 2, 4, 4);
        assert_eq!(out[0], 10);
        assert_eq!(out[3], 20);
        assert_eq!(out[15], 40);
    }

    #[test]
    fn bilinear_identity() {
        let src = vec![5u8, 9, 200, 17];
        assert_eq!(resize_bilinear(&src, 2, 2, 2, 2), src);
    }

    #[test]
    fn bilinear_constant_image_stays_constant() {
        let src = vec![77u8; 16];
        let out = resize_bilinear(&src, 4, 4, 7, 3);
        assert!(out.iter().all(|&p| p == 77));
    }

    #[test]
    fn bilinear_midpoint_interpolates() {
        // 1x2 image [0, 100] upscaled to 1x3 -> midpoint is 50
        let out = resize_bilinear(&[0, 100], 2, 1, 3, 1);
        assert_eq!(out, vec![0, 50, 100]);
    }

    #[test]
    fn f32_path_stays_within_one_lsb_of_u8_path() {
        // deterministic pseudo-random source so every tap weight is exercised
        let src: Vec<u8> = (0..40 * 30)
            .map(|i| ((i * 2654435761u64 as usize) >> 7) as u8)
            .collect();
        let mut f32_out = Vec::new();
        resize_bilinear_f32_into(&src, 40, 30, 17, 11, &mut f32_out);
        let u8_out = resize_bilinear(&src, 40, 30, 17, 11);
        for (f, &q) in f32_out.iter().zip(u8_out.iter()) {
            let diff = (f - q as f32 / 255.0).abs();
            // u8 path rounds to the nearest level, so half an LSB either way
            assert!(diff <= 0.5 / 255.0 + 1e-6, "diff {} exceeds 1/255", diff);
        }
    }

    #[test]
    fn into_variants_match_allocating_and_reuse_buffers() {
        let src: Vec<u8> = (0..64).map(|i| (i * 3) as u8).collect();
        let fresh = resize_bilinear(&src, 8, 8, 5, 5);
        let mut buf = vec![123u8; 3]; // stale, wrongly sized
        resize_bilinear_into(&src, 8, 8, 5, 5, &mut buf);
        assert_eq!(fresh, buf);
        // shrink through the same buffer: no stale tail
        resize_bilinear_into(&src, 8, 8, 2, 2, &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf, resize_bilinear(&src, 8, 8, 2, 2));
        let mut fbuf = vec![9.9f32; 100];
        resize_bilinear_f32_into(&src, 8, 8, 5, 5, &mut fbuf);
        assert_eq!(fbuf.len(), 25);
        assert!(fbuf.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn f32_identity_is_exact() {
        // identity resize must reproduce src/255 exactly (no quantization)
        let src = vec![5u8, 9, 200, 17];
        let mut out = Vec::new();
        resize_bilinear_f32_into(&src, 2, 2, 2, 2, &mut out);
        for (o, &s) in out.iter().zip(src.iter()) {
            assert_eq!(*o, s as f32 / 255.0);
        }
    }

    #[test]
    fn downscale_preserves_mean_roughly() {
        let src: Vec<u8> = (0..64).map(|i| (i * 4) as u8).collect();
        let mean_src = src.iter().map(|&p| p as f32).sum::<f32>() / 64.0;
        let out = resize_bilinear(&src, 8, 8, 4, 4);
        let mean_out = out.iter().map(|&p| p as f32).sum::<f32>() / 16.0;
        assert!((mean_src - mean_out).abs() < 10.0);
    }
}
