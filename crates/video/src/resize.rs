//! Frame resizing.
//!
//! Every FFS-VA filter consumes a different input size (SDD 100×100,
//! SNM 50×50, T-YOLO 416×416), so raw frames are resized before each stage
//! (§4.1: resize costs 40 µs / 150 µs / 400 µs respectively).

use crate::frame::Frame;

/// Nearest-neighbour resize of a Gray8 buffer.
pub fn resize_nearest(src: &[u8], sw: usize, sh: usize, dw: usize, dh: usize) -> Vec<u8> {
    assert_eq!(src.len(), sw * sh, "source buffer size mismatch");
    assert!(dw > 0 && dh > 0, "destination must be non-empty");
    let mut out = vec![0u8; dw * dh];
    for y in 0..dh {
        let sy = (y * sh) / dh;
        let src_row = &src[sy * sw..(sy + 1) * sw];
        let dst_row = &mut out[y * dw..(y + 1) * dw];
        for (x, d) in dst_row.iter_mut().enumerate() {
            let sx = (x * sw) / dw;
            *d = src_row[sx];
        }
    }
    out
}

/// Bilinear resize of a Gray8 buffer.
pub fn resize_bilinear(src: &[u8], sw: usize, sh: usize, dw: usize, dh: usize) -> Vec<u8> {
    assert_eq!(src.len(), sw * sh, "source buffer size mismatch");
    assert!(dw > 0 && dh > 0, "destination must be non-empty");
    let mut out = vec![0u8; dw * dh];
    let x_ratio = if dw > 1 {
        (sw - 1) as f32 / (dw - 1) as f32
    } else {
        0.0
    };
    let y_ratio = if dh > 1 {
        (sh - 1) as f32 / (dh - 1) as f32
    } else {
        0.0
    };
    for y in 0..dh {
        let fy = y as f32 * y_ratio;
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(sh - 1);
        let wy = fy - y0 as f32;
        for x in 0..dw {
            let fx = x as f32 * x_ratio;
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(sw - 1);
            let wx = fx - x0 as f32;
            let p00 = src[y0 * sw + x0] as f32;
            let p01 = src[y0 * sw + x1] as f32;
            let p10 = src[y1 * sw + x0] as f32;
            let p11 = src[y1 * sw + x1] as f32;
            let top = p00 + (p01 - p00) * wx;
            let bot = p10 + (p11 - p10) * wx;
            out[y * dw + x] = (top + (bot - top) * wy).round().clamp(0.0, 255.0) as u8;
        }
    }
    out
}

/// Resize a frame's luminance plane to `(dw, dh)` with bilinear filtering.
/// Color frames are converted to luma first — every filter in the cascade
/// works on luminance.
pub fn resize_frame(frame: &Frame, dw: usize, dh: usize) -> Vec<u8> {
    resize_bilinear(&frame.luma(), frame.width, frame.height, dw, dh)
}

/// Resize a frame and normalize to `f32` in `[0, 1]` (filter input format).
pub fn resize_frame_f32(frame: &Frame, dw: usize, dh: usize) -> Vec<f32> {
    resize_frame(frame, dw, dh)
        .into_iter()
        .map(|p| p as f32 / 255.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_identity() {
        let src = vec![1u8, 2, 3, 4];
        assert_eq!(resize_nearest(&src, 2, 2, 2, 2), src);
    }

    #[test]
    fn nearest_upscale_2x() {
        let src = vec![10u8, 20, 30, 40];
        let out = resize_nearest(&src, 2, 2, 4, 4);
        assert_eq!(out[0], 10);
        assert_eq!(out[3], 20);
        assert_eq!(out[15], 40);
    }

    #[test]
    fn bilinear_identity() {
        let src = vec![5u8, 9, 200, 17];
        assert_eq!(resize_bilinear(&src, 2, 2, 2, 2), src);
    }

    #[test]
    fn bilinear_constant_image_stays_constant() {
        let src = vec![77u8; 16];
        let out = resize_bilinear(&src, 4, 4, 7, 3);
        assert!(out.iter().all(|&p| p == 77));
    }

    #[test]
    fn bilinear_midpoint_interpolates() {
        // 1x2 image [0, 100] upscaled to 1x3 -> midpoint is 50
        let out = resize_bilinear(&[0, 100], 2, 1, 3, 1);
        assert_eq!(out, vec![0, 50, 100]);
    }

    #[test]
    fn downscale_preserves_mean_roughly() {
        let src: Vec<u8> = (0..64).map(|i| (i * 4) as u8).collect();
        let mean_src = src.iter().map(|&p| p as f32).sum::<f32>() / 64.0;
        let out = resize_bilinear(&src, 8, 8, 4, 4);
        let mean_out = out.iter().map(|&p| p as f32).sum::<f32>() / 16.0;
        assert!((mean_src - mean_out).abs() < 10.0);
    }
}
