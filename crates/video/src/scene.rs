//! Background and illumination models for a fixed-viewpoint camera.
//!
//! §3.2.1: the SDD threshold must absorb weather/illumination effects;
//! a static background needs a small δ_diff while a dynamic one (changing
//! light color and intensity) needs a larger one. Both regimes are modeled.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the scene illumination evolves over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackgroundKind {
    /// Constant illumination, only sensor noise.
    Static,
    /// Slow sinusoidal day/night cycle plus a bounded random-walk drift
    /// (clouds, auto-exposure hunting).
    Dynamic {
        /// Length of one day/night cycle in frames.
        period_frames: u64,
        /// Peak-to-peak amplitude of the cycle as a luminance factor (0..1).
        amplitude: f32,
        /// Per-frame std-dev of the drift random walk.
        drift_sigma: f32,
    },
}

/// A fixed-viewpoint background: a procedural base texture plus an
/// illumination process.
#[derive(Debug, Clone)]
pub struct Background {
    pub width: usize,
    pub height: usize,
    pub kind: BackgroundKind,
    base: Vec<u8>,
    drift: f32,
}

/// Deterministic per-pixel hash used for the base texture (splitmix-style).
fn pixel_hash(seed: u64, x: u64, y: u64) -> u64 {
    let mut z = seed ^ (x.wrapping_mul(0x9E3779B97F4A7C15)) ^ (y.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Background {
    /// Build a background texture: a vertical luminance gradient (sky → road)
    /// overlaid with block texture (buildings, lane markings) from a seeded
    /// hash, so each stream gets its own stable scene.
    pub fn new(width: usize, height: usize, kind: BackgroundKind, seed: u64) -> Self {
        let mut base = vec![0u8; width * height];
        let block = (width.max(height) / 12).max(2);
        for y in 0..height {
            let grad = 90.0 + 70.0 * (y as f32 / height.max(1) as f32);
            for x in 0..width {
                let h = pixel_hash(seed, (x / block) as u64, (y / block) as u64);
                let tex = ((h & 0x3F) as f32) - 32.0; // block texture in [-32, 31]
                let fine = ((pixel_hash(seed ^ 0xABCD, x as u64, y as u64) & 0x7) as f32) - 3.5;
                base[y * width + x] = (grad + tex * 0.6 + fine).clamp(16.0, 235.0) as u8;
            }
        }
        Background {
            width,
            height,
            kind,
            base,
            drift: 0.0,
        }
    }

    /// Illumination factor at a frame index, advancing internal drift state.
    pub fn illumination(&mut self, frame_idx: u64, rng: &mut impl Rng) -> f32 {
        match self.kind {
            BackgroundKind::Static => 1.0,
            BackgroundKind::Dynamic {
                period_frames,
                amplitude,
                drift_sigma,
            } => {
                let phase =
                    (frame_idx as f32 / period_frames.max(1) as f32) * std::f32::consts::TAU;
                let cycle = 1.0 - amplitude * 0.5 * (1.0 - phase.cos()) * 0.5;
                // bounded random walk
                self.drift += rng.gen_range(-1.0f32..1.0) * drift_sigma;
                self.drift = self.drift.clamp(-0.15, 0.15);
                (cycle + self.drift).clamp(0.3, 1.3)
            }
        }
    }

    /// Render the background into `buf` with an illumination factor and
    /// sensor noise of std-dev `noise_sigma` gray levels.
    pub fn render_into(&self, buf: &mut [u8], illum: f32, noise_sigma: f32, rng: &mut impl Rng) {
        assert_eq!(buf.len(), self.base.len(), "background buffer size");
        if noise_sigma <= 0.0 {
            for (d, &b) in buf.iter_mut().zip(self.base.iter()) {
                *d = ((b as f32) * illum).clamp(0.0, 255.0) as u8;
            }
        } else {
            for (d, &b) in buf.iter_mut().zip(self.base.iter()) {
                // cheap approximately-normal noise: sum of two uniforms
                let n = (rng.gen_range(-1.0f32..1.0) + rng.gen_range(-1.0f32..1.0)) * noise_sigma;
                *d = ((b as f32) * illum + n).clamp(0.0, 255.0) as u8;
            }
        }
    }

    /// The clean (noise-free, unit-illumination) base texture.
    pub fn base(&self) -> &[u8] {
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn background_is_deterministic_per_seed() {
        let a = Background::new(32, 24, BackgroundKind::Static, 7);
        let b = Background::new(32, 24, BackgroundKind::Static, 7);
        let c = Background::new(32, 24, BackgroundKind::Static, 8);
        assert_eq!(a.base(), b.base());
        assert_ne!(a.base(), c.base());
    }

    #[test]
    fn static_illumination_is_unity() {
        let mut bg = Background::new(8, 8, BackgroundKind::Static, 1);
        let mut r = rng();
        for i in 0..10 {
            assert_eq!(bg.illumination(i, &mut r), 1.0);
        }
    }

    #[test]
    fn dynamic_illumination_cycles_down_mid_period() {
        let kind = BackgroundKind::Dynamic {
            period_frames: 100,
            amplitude: 0.8,
            drift_sigma: 0.0,
        };
        let mut bg = Background::new(8, 8, kind, 1);
        let mut r = rng();
        let day = bg.illumination(0, &mut r);
        let night = bg.illumination(50, &mut r);
        assert!(night < day, "night {} vs day {}", night, day);
    }

    #[test]
    fn render_noise_free_is_pure_base_times_illum() {
        let bg = Background::new(16, 16, BackgroundKind::Static, 3);
        let mut buf = vec![0u8; 256];
        let mut r = rng();
        bg.render_into(&mut buf, 1.0, 0.0, &mut r);
        assert_eq!(&buf[..], bg.base());
        bg.render_into(&mut buf, 0.5, 0.0, &mut r);
        assert!(buf
            .iter()
            .zip(bg.base().iter())
            .all(|(&o, &b)| (o as i32 - (b as f32 * 0.5) as i32).abs() <= 1));
    }

    #[test]
    fn render_noise_changes_pixels_but_keeps_mean() {
        let bg = Background::new(32, 32, BackgroundKind::Static, 3);
        let mut buf = vec![0u8; 1024];
        let mut r = rng();
        bg.render_into(&mut buf, 1.0, 4.0, &mut r);
        let mean_base: f32 = bg.base().iter().map(|&p| p as f32).sum::<f32>() / 1024.0;
        let mean_out: f32 = buf.iter().map(|&p| p as f32).sum::<f32>() / 1024.0;
        assert!((mean_base - mean_out).abs() < 3.0);
        assert_ne!(&buf[..], bg.base());
    }
}
