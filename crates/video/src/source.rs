//! Unreliable frame sources: deterministic ingest-fault injection.
//!
//! Real camera feeds disconnect, stutter, corrupt payloads, and deliver
//! frames late or twice. This module models all of that *deterministically*,
//! keyed on frame sequence numbers, mirroring `ffsva_sched::fault`: the same
//! [`SourceFaultPlan`] reproduces the same ingest weather in the
//! discrete-event engine and in the threaded engine, so the DES↔RT
//! conformance suite extends to flaky sources.
//!
//! Pieces:
//!
//! * [`FrameSource`] — the pull interface unifying clip-backed and
//!   generator-backed streams, with a `position()` cursor for checkpointing.
//! * [`SourceFaultPlan`] — a validated, serializable set of per-stream
//!   source faults with a CLI grammar
//!   (`stream<S>.src:disconnect@N+DURms|corrupt@N|drop@N..M|reorder@N+K|dup@N`).
//! * [`Turbulence`] — the pure state machine that turns a clean in-order
//!   frame stream plus a [`SourceInjector`] into the faulted delivery
//!   sequence. Both engines run this exact code, which is what makes ingest
//!   accounting bit-identical across them.
//! * [`UnreliableSource`] — the RT-side wrapper: applies [`Turbulence`] to a
//!   real [`FrameSource`], corrupting payload *bytes* (while claiming the
//!   original checksum) so the ingest worker's checksum validation is
//!   exercised for real.
//! * [`plan_reconnect`] — the pure capped-exponential-backoff arithmetic
//!   deciding whether a disconnect is survived (`Reconnected`) or degrades
//!   the stream (`Lost`). The RT engine sleeps the waited time for real; the
//!   DES adds it to virtual time — the *decision* is identical.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::checksum::{fnv1a_continue, frame_checksum, FNV_OFFSET};
use crate::frame::{Frame, PixelFormat, StreamId};
use crate::generator::{LabeledFrame, VideoStream};
use crate::truth::GroundTruth;

// ---------------------------------------------------------------------------
// frame sources

/// A pull-based frame stream both engines can ingest from.
pub trait FrameSource: Send {
    /// The next frame, or `None` when the stream has ended cleanly.
    fn next_frame(&mut self) -> Option<LabeledFrame>;

    /// Frames consumed from the underlying stream so far — including any
    /// resume base. This is the cursor a checkpoint persists.
    fn position(&self) -> u64;
}

/// A source backed by an in-memory clip (recorded or pre-generated).
pub struct ClipSource {
    frames: std::vec::IntoIter<LabeledFrame>,
    pos: u64,
}

impl ClipSource {
    pub fn new(clip: Vec<LabeledFrame>) -> Self {
        ClipSource {
            frames: clip.into_iter(),
            pos: 0,
        }
    }

    /// Resume: skip the first `skip` frames (already accounted by a
    /// checkpoint); `position()` continues from `skip`.
    pub fn starting_at(clip: Vec<LabeledFrame>, skip: u64) -> Self {
        let mut frames = clip.into_iter();
        for _ in 0..skip {
            if frames.next().is_none() {
                break;
            }
        }
        ClipSource { frames, pos: skip }
    }
}

impl FrameSource for ClipSource {
    fn next_frame(&mut self) -> Option<LabeledFrame> {
        let lf = self.frames.next()?;
        self.pos += 1;
        Some(lf)
    }

    fn position(&self) -> u64 {
        self.pos
    }
}

/// A source that renders frames on demand from the synthetic generator.
pub struct GeneratorSource {
    stream: VideoStream,
    remaining: u64,
    pos: u64,
}

impl GeneratorSource {
    /// A generator-backed source producing `frames` frames.
    pub fn new(stream: VideoStream, frames: u64) -> Self {
        GeneratorSource {
            stream,
            remaining: frames,
            pos: 0,
        }
    }
}

impl FrameSource for GeneratorSource {
    fn next_frame(&mut self) -> Option<LabeledFrame> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.pos += 1;
        Some(self.stream.next_frame())
    }

    fn position(&self) -> u64 {
        self.pos
    }
}

// ---------------------------------------------------------------------------
// fault plan

/// A single source-side fault, keyed on frame sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SourceFault {
    /// One-shot: before delivering the first frame with `seq >= at_frame`
    /// the link goes down for `dur_ms` of source time. The ingest worker
    /// retries with capped exponential backoff ([`plan_reconnect`]); budget
    /// exhaustion degrades the stream to `SourceLost`.
    DisconnectAt { at_frame: u64, dur_ms: u64 },
    /// One-shot: the first frame with `seq >= at_frame` arrives with a
    /// corrupted payload (its claimed checksum no longer matches the bytes).
    CorruptAt { at_frame: u64 },
    /// Persistent: frames with `from <= seq < to` are silently lost at the
    /// source (the downstream sees a sequence gap).
    DropRange { from: u64, to: u64 },
    /// One-shot: the first frame with `seq >= at_frame` is held back until
    /// `by` later frames have been delivered (bounded out-of-order/late
    /// delivery). Arrivals later than the reorder buffer are evicted.
    ReorderAt { at_frame: u64, by: u64 },
    /// One-shot: the first frame with `seq >= at_frame` is delivered twice.
    DuplicateAt { at_frame: u64 },
}

impl fmt::Display for SourceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SourceFault::DisconnectAt { at_frame, dur_ms } => {
                write!(f, "disconnect@{at_frame}+{dur_ms}ms")
            }
            SourceFault::CorruptAt { at_frame } => write!(f, "corrupt@{at_frame}"),
            SourceFault::DropRange { from, to } => write!(f, "drop@{from}..{to}"),
            SourceFault::ReorderAt { at_frame, by } => write!(f, "reorder@{at_frame}+{by}"),
            SourceFault::DuplicateAt { at_frame } => write!(f, "dup@{at_frame}"),
        }
    }
}

/// One source fault bound to a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SourceFaultEntry {
    pub stream: usize,
    pub fault: SourceFault,
}

impl fmt::Display for SourceFaultEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}.src:{}", self.stream, self.fault)
    }
}

/// A deterministic, validated set of source faults.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SourceFaultPlan {
    entries: Vec<SourceFaultEntry>,
}

impl SourceFaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: add one fault.
    pub fn with(mut self, stream: usize, fault: SourceFault) -> Self {
        self.entries.push(SourceFaultEntry { stream, fault });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[SourceFaultEntry] {
        &self.entries
    }

    /// Reject plans neither engine can honour identically.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.entries {
            match e.fault {
                SourceFault::DisconnectAt { dur_ms, .. } => {
                    if dur_ms == 0 {
                        return Err(format!("{e}: disconnect duration must be >= 1 ms"));
                    }
                }
                SourceFault::DropRange { from, to } => {
                    if to <= from {
                        return Err(format!("{e}: empty drop range (need from < to)"));
                    }
                }
                SourceFault::ReorderAt { by, .. } => {
                    if by == 0 {
                        return Err(format!("{e}: reorder displacement must be >= 1"));
                    }
                }
                SourceFault::CorruptAt { .. } | SourceFault::DuplicateAt { .. } => {}
            }
        }
        Ok(())
    }

    /// Build the injector for one stream. Each call creates fresh one-shot
    /// state, so build injectors once per run.
    pub fn injector(&self, stream: usize) -> SourceInjector {
        let mut inj = SourceInjector::noop();
        for e in &self.entries {
            if e.stream != stream {
                continue;
            }
            match e.fault {
                SourceFault::DisconnectAt { at_frame, dur_ms } => {
                    inj.disconnects.push(Disconnect {
                        one: OneShot::new(at_frame),
                        dur_ms,
                    });
                }
                SourceFault::CorruptAt { at_frame } => inj.corrupts.push(OneShot::new(at_frame)),
                SourceFault::DropRange { from, to } => inj.drops.push((from, to)),
                SourceFault::ReorderAt { at_frame, by } => inj.reorders.push(Reorder {
                    one: OneShot::new(at_frame),
                    by,
                }),
                SourceFault::DuplicateAt { at_frame } => inj.dups.push(OneShot::new(at_frame)),
            }
        }
        inj
    }

    /// Parse the CLI grammar: a comma- or semicolon-separated list of
    /// `stream<S>.src:<fault>` where `<fault>` is one of
    /// `disconnect@<n>+<ms>ms`, `corrupt@<n>`, `drop@<n>..<m>`,
    /// `reorder@<n>+<k>`, `dup@<n>`.
    ///
    /// Example: `stream1.src:disconnect@100+500ms,stream0.src:drop@10..20`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = SourceFaultPlan::new();
        for part in spec.split([',', ';']) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (coord, fault) = part
                .split_once(':')
                .ok_or_else(|| format!("`{part}`: expected stream<S>.src:<fault>"))?;
            let (stream_s, stage_s) = coord
                .split_once('.')
                .ok_or_else(|| format!("`{coord}`: expected stream<S>.src"))?;
            let stream: usize = stream_s
                .strip_prefix("stream")
                .ok_or_else(|| format!("`{stream_s}`: expected stream<S>"))?
                .parse()
                .map_err(|_| format!("`{stream_s}`: bad stream index"))?;
            if stage_s != "src" {
                return Err(format!(
                    "`{stage_s}`: source faults target `src` (stage faults go in --fault-plan)"
                ));
            }
            let (kind, arg) = fault
                .split_once('@')
                .ok_or_else(|| format!("`{fault}`: expected <kind>@<arg>"))?;
            let fault = match kind {
                "corrupt" => SourceFault::CorruptAt {
                    at_frame: arg.parse().map_err(|_| format!("`{arg}`: bad frame seq"))?,
                },
                "dup" => SourceFault::DuplicateAt {
                    at_frame: arg.parse().map_err(|_| format!("`{arg}`: bad frame seq"))?,
                },
                "disconnect" => {
                    let (at_s, dur_s) = arg
                        .split_once('+')
                        .ok_or_else(|| format!("`{arg}`: expected <frame>+<ms>ms"))?;
                    let at_frame = at_s
                        .parse()
                        .map_err(|_| format!("`{at_s}`: bad frame seq"))?;
                    let dur_ms: u64 = dur_s
                        .strip_suffix("ms")
                        .ok_or_else(|| format!("`{dur_s}`: expected <ms>ms"))?
                        .parse()
                        .map_err(|_| format!("`{dur_s}`: bad duration"))?;
                    SourceFault::DisconnectAt { at_frame, dur_ms }
                }
                "drop" => {
                    let (from_s, to_s) = arg
                        .split_once("..")
                        .ok_or_else(|| format!("`{arg}`: expected <from>..<to>"))?;
                    SourceFault::DropRange {
                        from: from_s
                            .parse()
                            .map_err(|_| format!("`{from_s}`: bad frame seq"))?,
                        to: to_s
                            .parse()
                            .map_err(|_| format!("`{to_s}`: bad frame seq"))?,
                    }
                }
                "reorder" => {
                    let (at_s, by_s) = arg
                        .split_once('+')
                        .ok_or_else(|| format!("`{arg}`: expected <frame>+<k>"))?;
                    SourceFault::ReorderAt {
                        at_frame: at_s
                            .parse()
                            .map_err(|_| format!("`{at_s}`: bad frame seq"))?,
                        by: by_s
                            .parse()
                            .map_err(|_| format!("`{by_s}`: bad displacement"))?,
                    }
                }
                other => return Err(format!("unknown source fault kind `{other}`")),
            };
            plan.entries.push(SourceFaultEntry { stream, fault });
        }
        plan.validate()?;
        Ok(plan)
    }
}

// ---------------------------------------------------------------------------
// injector

#[derive(Debug, Clone)]
struct OneShot {
    at_frame: u64,
    fired: Arc<AtomicBool>,
}

impl OneShot {
    fn new(at_frame: u64) -> Self {
        OneShot {
            at_frame,
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Fire exactly once, on the first `seq >= at_frame` — shared across
    /// clones (a resumed or restarted worker must not re-fire).
    fn check(&self, seq: u64) -> bool {
        seq >= self.at_frame && !self.fired.swap(true, Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
struct Disconnect {
    one: OneShot,
    dur_ms: u64,
}

#[derive(Debug, Clone)]
struct Reorder {
    one: OneShot,
    by: u64,
}

/// What the source does with the frame it is about to deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceAction {
    Deliver,
    /// Payload corrupted in transit (checksum will mismatch).
    Corrupt,
    /// Silently lost at the source.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// Held back until this many later frames have been delivered.
    DelayBy(u64),
}

/// Per-stream source fault state shared across worker restarts and clones.
#[derive(Debug, Clone, Default)]
pub struct SourceInjector {
    disconnects: Vec<Disconnect>,
    corrupts: Vec<OneShot>,
    drops: Vec<(u64, u64)>,
    reorders: Vec<Reorder>,
    dups: Vec<OneShot>,
}

impl SourceInjector {
    /// An injector that never fires — the zero-cost default.
    pub fn noop() -> Self {
        Self::default()
    }

    pub fn is_noop(&self) -> bool {
        self.disconnects.is_empty()
            && self.corrupts.is_empty()
            && self.drops.is_empty()
            && self.reorders.is_empty()
            && self.dups.is_empty()
    }

    /// Link outages firing before the frame with this seq is delivered
    /// (one-shot each; several entries can mature on the same frame).
    pub fn disconnects_before(&self, seq: u64) -> Vec<u64> {
        self.disconnects
            .iter()
            .filter(|d| d.one.check(seq))
            .map(|d| d.dur_ms)
            .collect()
    }

    /// The fate of the frame with this seq. Precedence when several faults
    /// target one frame: drop > corrupt > reorder > duplicate (a one-shot
    /// that loses the race stays armed for the next frame).
    pub fn action(&self, seq: u64) -> SourceAction {
        if self.drops.iter().any(|&(from, to)| from <= seq && seq < to) {
            return SourceAction::Drop;
        }
        if self.corrupts.iter().any(|o| o.check(seq)) {
            return SourceAction::Corrupt;
        }
        if let Some(by) = self
            .reorders
            .iter()
            .find_map(|r| r.one.check(seq).then_some(r.by))
        {
            return SourceAction::DelayBy(by);
        }
        if self.dups.iter().any(|o| o.check(seq)) {
            return SourceAction::Duplicate;
        }
        SourceAction::Deliver
    }

    /// Resume support: mark every one-shot aimed strictly before `first_seq`
    /// as already fired, so a resumed run does not replay faults whose
    /// effects are already in the checkpointed counters.
    pub fn fast_forward(&self, first_seq: u64) {
        let expire = |o: &OneShot| {
            if o.at_frame < first_seq {
                o.fired.store(true, Ordering::Relaxed);
            }
        };
        self.disconnects.iter().for_each(|d| expire(&d.one));
        self.corrupts.iter().for_each(expire);
        self.reorders.iter().for_each(|r| expire(&r.one));
        self.dups.iter().for_each(expire);
    }
}

// ---------------------------------------------------------------------------
// turbulence: the shared delivery-disorder state machine

/// One event on the faulted delivery timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceEvent<T> {
    /// A frame crossing the link. `corrupt` marks a payload whose checksum
    /// will not validate (the DES, having no pixels, carries the flag
    /// directly; the RT wrapper corrupts real bytes).
    Frame { seq: u64, item: T, corrupt: bool },
    /// A frame silently lost at the source.
    Dropped { seq: u64 },
    /// The link goes down for `dur_ms` before the next delivery.
    Disconnect { dur_ms: u64 },
}

/// Turns a clean, in-order frame stream into the faulted delivery sequence
/// dictated by a [`SourceInjector`]. Pure and engine-agnostic: feed frames
/// in seq order, get delivery events out; both engines run this exact code
/// so their ingest accounting is bit-identical.
#[derive(Debug, Clone)]
pub struct Turbulence<T> {
    inj: SourceInjector,
    /// Held-back frames: (deliveries still to pass, seq, item).
    delayed: Vec<(u64, u64, T)>,
    dropped: u64,
}

impl<T: Clone> Turbulence<T> {
    pub fn new(inj: SourceInjector) -> Self {
        Turbulence {
            inj,
            delayed: Vec::new(),
            dropped: 0,
        }
    }

    /// Offer the next clean frame; returns the delivery events it causes
    /// (possibly none — a dropped frame plus no matured holds).
    pub fn feed(&mut self, seq: u64, item: T) -> Vec<SourceEvent<T>> {
        let mut out = Vec::new();
        for dur_ms in self.inj.disconnects_before(seq) {
            out.push(SourceEvent::Disconnect { dur_ms });
        }
        match self.inj.action(seq) {
            SourceAction::Drop => {
                self.dropped += 1;
                out.push(SourceEvent::Dropped { seq });
            }
            SourceAction::Corrupt => self.deliver(&mut out, seq, item, true),
            SourceAction::DelayBy(by) => self.delayed.push((by, seq, item)),
            SourceAction::Duplicate => {
                self.deliver(&mut out, seq, item.clone(), false);
                self.deliver(&mut out, seq, item, false);
            }
            SourceAction::Deliver => self.deliver(&mut out, seq, item, false),
        }
        out
    }

    /// The stream ended: flush still-held frames in seq order.
    pub fn finish(&mut self) -> Vec<SourceEvent<T>> {
        self.delayed.sort_by_key(|&(_, seq, _)| seq);
        self.delayed
            .drain(..)
            .map(|(_, seq, item)| SourceEvent::Frame {
                seq,
                item,
                corrupt: false,
            })
            .collect()
    }

    /// Frames silently lost at the source so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Emit one frame; every delivery brings held-back frames one step
    /// closer to release, and matured holds follow immediately (they do not
    /// tick the countdowns themselves, so holds cannot cascade).
    fn deliver(&mut self, out: &mut Vec<SourceEvent<T>>, seq: u64, item: T, corrupt: bool) {
        out.push(SourceEvent::Frame { seq, item, corrupt });
        for d in &mut self.delayed {
            d.0 = d.0.saturating_sub(1);
        }
        self.delayed.sort_by_key(|&(left, seq, _)| (left, seq));
        while let Some(&(0, _, _)) = self.delayed.first() {
            let (_, seq, item) = self.delayed.remove(0);
            out.push(SourceEvent::Frame {
                seq,
                item,
                corrupt: false,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// reconnect arithmetic

/// Retry/backoff parameters for surviving a source disconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReconnectPolicy {
    /// Reconnect attempts before giving the stream up as `SourceLost`.
    pub retry_budget: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_ms: u64,
    /// Ceiling on any single backoff.
    pub backoff_cap_ms: u64,
}

/// The outcome of riding out one link outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconnectOutcome {
    /// The link came back within the retry budget after `waited_ms` of
    /// cumulative backoff across `attempts` attempts.
    Reconnected { attempts: u32, waited_ms: u64 },
    /// The budget exhausted first: the stream degrades to `SourceLost`.
    Lost { attempts: u32, waited_ms: u64 },
}

/// Pure capped-exponential-backoff arithmetic: given an outage of
/// `outage_ms`, how many attempts and how much cumulative wait until the
/// link is back — or `Lost` if the budget runs out first. Both engines call
/// this with the same inputs, so reconnect-vs-SourceLost decisions (and the
/// waited time) are identical; only *how* the wait elapses differs (real
/// sleep in RT, virtual time in the DES).
pub fn plan_reconnect(outage_ms: u64, policy: ReconnectPolicy) -> ReconnectOutcome {
    let base = policy.backoff_ms.max(1);
    let cap = policy.backoff_cap_ms.max(base);
    let mut waited_ms = 0u64;
    for attempt in 1..=policy.retry_budget {
        let backoff = base
            .saturating_mul(1u64 << (u64::from(attempt) - 1).min(20))
            .min(cap);
        waited_ms = waited_ms.saturating_add(backoff);
        if waited_ms >= outage_ms {
            return ReconnectOutcome::Reconnected {
                attempts: attempt,
                waited_ms,
            };
        }
    }
    ReconnectOutcome::Lost {
        attempts: policy.retry_budget,
        waited_ms,
    }
}

// ---------------------------------------------------------------------------
// the RT-side wrapper

/// What an ingest worker pulls from an [`UnreliableSource`].
#[derive(Debug, Clone)]
pub enum SourceItem {
    /// A frame plus the checksum the source *claims* for its payload. A
    /// corrupted frame carries the original checksum over flipped bytes, so
    /// validation (`frame_checksum(&lf.frame) != claimed_checksum`) fails.
    Frame {
        lf: LabeledFrame,
        claimed_checksum: u64,
    },
    /// A frame was silently lost at the source (sequence gap follows).
    Dropped { seq: u64 },
    /// The link dropped for `dur_ms`; the worker must reconnect (or give
    /// the stream up) before the next frame.
    Disconnect { dur_ms: u64 },
    /// Clean end of stream.
    End,
}

/// Wraps a [`FrameSource`] in deterministic ingest weather. Corruption is
/// real: payload bytes are flipped while the claimed checksum stays that of
/// the original payload, so the ingest worker's validation path is the
/// thing that catches it.
pub struct UnreliableSource<S> {
    inner: S,
    turb: Turbulence<LabeledFrame>,
    queue: VecDeque<SourceItem>,
    done: bool,
}

impl<S: FrameSource> UnreliableSource<S> {
    pub fn new(inner: S, inj: SourceInjector) -> Self {
        UnreliableSource {
            inner,
            turb: Turbulence::new(inj),
            queue: VecDeque::new(),
            done: false,
        }
    }

    /// The next delivery event. Frames arrive possibly corrupted,
    /// duplicated, reordered, or not at all; `End` is terminal.
    pub fn next_item(&mut self) -> SourceItem {
        loop {
            if let Some(item) = self.queue.pop_front() {
                return item;
            }
            if self.done {
                return SourceItem::End;
            }
            match self.inner.next_frame() {
                Some(lf) => {
                    let seq = lf.frame.seq;
                    for ev in self.turb.feed(seq, lf) {
                        let item = realize(ev);
                        self.queue.push_back(item);
                    }
                }
                None => {
                    self.done = true;
                    for ev in self.turb.finish() {
                        let item = realize(ev);
                        self.queue.push_back(item);
                    }
                }
            }
        }
    }

    /// Frames consumed from the underlying stream (the checkpoint cursor).
    pub fn position(&self) -> u64 {
        self.inner.position()
    }

    /// Frames silently lost at the source so far.
    pub fn dropped(&self) -> u64 {
        self.turb.dropped()
    }

    /// Give up mid-stream (e.g. after `SourceLost`): frames still held by
    /// the reorder fault plus everything unread count as lost with the link.
    /// Only *distinct frames* count — queued drop/disconnect markers are not
    /// frames, and a duplicated frame is one loss, not two — so the
    /// conservation identity survives faults stacked on the same frame.
    pub fn abandon(&mut self) -> u64 {
        let mut seqs: std::collections::BTreeSet<u64> = self
            .turb
            .finish()
            .iter()
            .filter_map(|ev| match ev {
                SourceEvent::Frame { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        for item in self.queue.drain(..) {
            if let SourceItem::Frame { lf, .. } = item {
                seqs.insert(lf.frame.seq);
            }
        }
        let mut lost = seqs.len() as u64;
        while self.inner.next_frame().is_some() {
            lost += 1;
        }
        self.done = true;
        lost
    }
}

fn realize(ev: SourceEvent<LabeledFrame>) -> SourceItem {
    match ev {
        SourceEvent::Frame { item, corrupt, .. } => {
            let claimed_checksum = frame_checksum(&item.frame);
            let lf = if corrupt { corrupt_payload(item) } else { item };
            SourceItem::Frame {
                lf,
                claimed_checksum,
            }
        }
        SourceEvent::Dropped { seq } => SourceItem::Dropped { seq },
        SourceEvent::Disconnect { dur_ms } => SourceItem::Disconnect { dur_ms },
    }
}

/// Flip a prefix of the payload bytes, keeping geometry valid so the damage
/// is only detectable by checksum (exactly what a torn network read looks
/// like to a decoder).
fn corrupt_payload(lf: LabeledFrame) -> LabeledFrame {
    let f = &lf.frame;
    let mut data = f.data.to_vec();
    for b in data.iter_mut().take(32) {
        *b ^= 0x5A;
    }
    let frame = match f.format {
        PixelFormat::Gray8 => Frame::gray8(f.stream, f.seq, f.pts_ms, f.width, f.height, data),
        PixelFormat::Rgb8 => Frame::rgb8(f.stream, f.seq, f.pts_ms, f.width, f.height, data),
    };
    LabeledFrame {
        frame,
        truth: lf.truth,
    }
}

// ---------------------------------------------------------------------------
// network-attached source

/// Stream metadata sent once per connection before any frame record.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireHeader {
    pub stream: StreamId,
    pub width: usize,
    pub height: usize,
    pub format: PixelFormat,
    /// Total frames the server intends to deliver (the announced budget a
    /// puller can bound its loop on).
    pub total: u64,
}

/// Upper bound on one wire record (64 MiB) — anything larger is a framing
/// error, rejected before allocation.
pub const MAX_WIRE_RECORD: usize = 64 << 20;

fn wire_checksum(seq: u64, pts_ms: u64, truth: &[u8], rle: &[u8]) -> u64 {
    let mut h = fnv1a_continue(FNV_OFFSET, &seq.to_le_bytes());
    h = fnv1a_continue(h, &pts_ms.to_le_bytes());
    h = fnv1a_continue(h, truth);
    fnv1a_continue(h, rle)
}

/// Encode one labeled frame as a wire record payload (no length prefix):
/// `seq u64 | pts_ms u64 | truth_len u32 + truth JSON | rle_len u32 + RLE
/// pixels | checksum u64`, all little-endian — the FFSV1 record layout,
/// reused so the framing has exactly one on-disk/on-wire shape.
pub fn encode_wire_frame(lf: &LabeledFrame) -> Vec<u8> {
    let truth = serde_json::to_vec(&lf.truth).expect("serializable truth");
    let rle = crate::storage::rle_encode(lf.frame.pixels());
    let mut out = Vec::with_capacity(32 + truth.len() + rle.len());
    out.extend_from_slice(&lf.frame.seq.to_le_bytes());
    out.extend_from_slice(&lf.frame.pts_ms.to_le_bytes());
    out.extend_from_slice(&(truth.len() as u32).to_le_bytes());
    out.extend_from_slice(&truth);
    out.extend_from_slice(&(rle.len() as u32).to_le_bytes());
    out.extend_from_slice(&rle);
    out.extend_from_slice(
        &wire_checksum(lf.frame.seq, lf.frame.pts_ms, &truth, &rle).to_le_bytes(),
    );
    out
}

/// Decode one wire record payload against the connection's [`WireHeader`],
/// verifying the record checksum and the RLE geometry.
pub fn decode_wire_frame(buf: &[u8], header: &WireHeader) -> std::io::Result<LabeledFrame> {
    use std::io::{Error, ErrorKind};
    let bad = |d: &str| Error::new(ErrorKind::InvalidData, format!("wire record: {d}"));
    let take = |buf: &[u8], at: usize, n: usize| -> std::io::Result<Vec<u8>> {
        buf.get(at..at + n)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| bad("truncated"))
    };
    let u64_at = |at: usize| -> std::io::Result<u64> {
        Ok(u64::from_le_bytes(take(buf, at, 8)?.try_into().unwrap()))
    };
    let u32_at = |at: usize| -> std::io::Result<u32> {
        Ok(u32::from_le_bytes(take(buf, at, 4)?.try_into().unwrap()))
    };
    let seq = u64_at(0)?;
    let pts_ms = u64_at(8)?;
    let tlen = u32_at(16)? as usize;
    let truth_bytes = take(buf, 20, tlen)?;
    let rlen = u32_at(20 + tlen)? as usize;
    let rle = take(buf, 24 + tlen, rlen)?;
    let stored = u64_at(24 + tlen + rlen)?;
    let computed = wire_checksum(seq, pts_ms, &truth_bytes, &rle);
    if stored != computed {
        return Err(bad("checksum mismatch"));
    }
    let truth: GroundTruth =
        serde_json::from_slice(&truth_bytes).map_err(|e| bad(&e.to_string()))?;
    let expect = header.width * header.height * header.format.bytes_per_pixel();
    let pixels = crate::storage::rle_decode(&rle, expect)?;
    let frame = match header.format {
        PixelFormat::Gray8 => Frame::gray8(
            header.stream,
            seq,
            pts_ms,
            header.width,
            header.height,
            pixels,
        ),
        PixelFormat::Rgb8 => Frame::rgb8(
            header.stream,
            seq,
            pts_ms,
            header.width,
            header.height,
            pixels,
        ),
    };
    Ok(LabeledFrame { frame, truth })
}

fn read_exact_u32(s: &mut impl std::io::Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    s.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// A [`FrameSource`] pulling length-prefixed frames over TCP.
///
/// Protocol, client side: connect, send the resume position (`u64` LE —
/// the index of the first frame wanted), read one `u32`-length-prefixed
/// [`WireHeader`] JSON, then `u32`-length-prefixed frame records; a zero
/// length is the clean end of stream.
///
/// Every socket read and write carries a deadline (`io_timeout`), so a hung
/// peer looks exactly like a dead link: the source redials with the same
/// capped-exponential backoff arithmetic [`plan_reconnect`] models, sending
/// the current position so reconnection never duplicates or skips a frame.
/// When the retry budget burns out the source marks itself [`lost`]
/// (`SocketSource::lost`) and `next_frame` returns `None` — the caller
/// degrades the stream to `SourceLost` quarantine, never a hung loop.
pub struct SocketSource {
    addr: String,
    policy: ReconnectPolicy,
    io_timeout: std::time::Duration,
    conn: Option<(std::net::TcpStream, WireHeader)>,
    pos: u64,
    total: Option<u64>,
    lost: bool,
    done: bool,
    reconnects: u64,
}

impl SocketSource {
    /// A lazily-dialed socket source; the first `next_frame` connects.
    pub fn new(
        addr: impl Into<String>,
        policy: ReconnectPolicy,
        io_timeout: std::time::Duration,
    ) -> Self {
        SocketSource {
            addr: addr.into(),
            policy,
            io_timeout,
            conn: None,
            pos: 0,
            total: None,
            lost: false,
            done: false,
            reconnects: 0,
        }
    }

    /// Resume support: start pulling at frame index `start` (already
    /// accounted by a checkpoint); `position()` continues from `start`.
    pub fn resume_at(mut self, start: u64) -> Self {
        self.pos = start;
        self
    }

    /// The link died and the retry budget is exhausted: whatever was not
    /// pulled is gone. Terminal.
    pub fn lost(&self) -> bool {
        self.lost
    }

    /// Redial attempts so far (not counting the initial connect).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The server's announced frame budget, once a header has been read.
    pub fn announced_total(&self) -> Option<u64> {
        self.total
    }

    fn dial(&mut self) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind, Write};
        let stream = std::net::TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let mut stream = stream;
        stream.write_all(&self.pos.to_le_bytes())?;
        let hlen = read_exact_u32(&mut stream)? as usize;
        if hlen == 0 || hlen > 1 << 16 {
            return Err(Error::new(ErrorKind::InvalidData, "bad wire header length"));
        }
        let mut hjson = vec![0u8; hlen];
        std::io::Read::read_exact(&mut stream, &mut hjson)?;
        let header: WireHeader =
            serde_json::from_slice(&hjson).map_err(|e| Error::new(ErrorKind::InvalidData, e))?;
        self.total = Some(header.total);
        self.conn = Some((stream, header));
        Ok(())
    }

    fn pull_once(&mut self) -> std::io::Result<Option<LabeledFrame>> {
        use std::io::{Error, ErrorKind, Read};
        if self.conn.is_none() {
            self.dial()?;
        }
        let (stream, header) = self.conn.as_mut().expect("dialed");
        let len = read_exact_u32(stream)? as usize;
        if len == 0 {
            return Ok(None);
        }
        if len > MAX_WIRE_RECORD {
            return Err(Error::new(ErrorKind::InvalidData, "oversized wire record"));
        }
        let mut buf = vec![0u8; len];
        stream.read_exact(&mut buf)?;
        decode_wire_frame(&buf, header).map(Some)
    }
}

impl FrameSource for SocketSource {
    fn next_frame(&mut self) -> Option<LabeledFrame> {
        if self.done || self.lost {
            return None;
        }
        let mut attempt = 0u32;
        let base = self.policy.backoff_ms.max(1);
        let cap = self.policy.backoff_cap_ms.max(base);
        let mut backoff = base;
        loop {
            match self.pull_once() {
                Ok(Some(lf)) => {
                    self.pos += 1;
                    return Some(lf);
                }
                Ok(None) => {
                    self.done = true;
                    self.conn = None;
                    return None;
                }
                Err(_) => {
                    // dead or hung link: redial at the current position with
                    // capped-exponential backoff until the budget burns out
                    self.conn = None;
                    if attempt >= self.policy.retry_budget {
                        self.lost = true;
                        return None;
                    }
                    attempt += 1;
                    self.reconnects += 1;
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                    backoff = backoff.saturating_mul(2).min(cap);
                }
            }
        }
    }

    fn position(&self) -> u64 {
        self.pos
    }
}

/// Fault knobs for [`spawn_frame_server`] — deterministic network weather
/// from the server side, complementing the client-side [`SourceFaultPlan`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameServerOptions {
    /// Cut each connection (no terminator) after sending this many records:
    /// a mid-stream disconnect the client must ride out by redialing.
    pub disconnect_after: Option<u64>,
    /// Stop accepting after this many connections; later redials are
    /// refused, so a client degrades to lost. `None` = keep accepting until
    /// some client drains the clip cleanly.
    pub max_conns: Option<usize>,
}

/// Serve `frames` over TCP on an ephemeral localhost port, one connection
/// at a time, honouring resume positions. Returns the bound address and the
/// accept-loop handle; the loop exits after a client drains the clip
/// cleanly, or after `max_conns` connections.
pub fn spawn_frame_server(
    frames: Vec<LabeledFrame>,
    opts: FrameServerOptions,
) -> std::io::Result<(std::net::SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        let mut conns = 0usize;
        let max = opts.max_conns.unwrap_or(usize::MAX);
        while conns < max {
            let Ok((mut stream, _)) = listener.accept() else {
                break;
            };
            conns += 1;
            if serve_wire_conn(&mut stream, &frames, opts.disconnect_after).unwrap_or(false) {
                break; // a client reached the clean end of stream
            }
        }
    });
    Ok((addr, handle))
}

/// One connection: read the resume position, send header + records, then
/// the zero-length terminator. `Ok(true)` iff the terminator was sent.
fn serve_wire_conn(
    stream: &mut std::net::TcpStream,
    frames: &[LabeledFrame],
    disconnect_after: Option<u64>,
) -> std::io::Result<bool> {
    use std::io::{Read, Write};
    let io_timeout = std::time::Duration::from_secs(5);
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut start = [0u8; 8];
    stream.read_exact(&mut start)?;
    let start = u64::from_le_bytes(start) as usize;
    let header = match frames.first() {
        Some(lf) => WireHeader {
            stream: lf.frame.stream,
            width: lf.frame.width,
            height: lf.frame.height,
            format: lf.frame.format,
            total: frames.len() as u64,
        },
        None => WireHeader {
            stream: 0,
            width: 1,
            height: 1,
            format: PixelFormat::Gray8,
            total: 0,
        },
    };
    let hjson = serde_json::to_vec(&header).expect("serializable header");
    stream.write_all(&(hjson.len() as u32).to_le_bytes())?;
    stream.write_all(&hjson)?;
    let mut sent = 0u64;
    for lf in frames.iter().skip(start) {
        if disconnect_after.is_some_and(|cut| sent >= cut) {
            return Ok(false); // drop the link mid-stream, no terminator
        }
        let rec = encode_wire_frame(lf);
        stream.write_all(&(rec.len() as u32).to_le_bytes())?;
        stream.write_all(&rec)?;
        sent += 1;
    }
    stream.write_all(&0u32.to_le_bytes())?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::ObjectClass;
    use crate::workloads;

    #[test]
    fn parse_round_trips_the_grammar() {
        let spec = "stream1.src:disconnect@100+500ms, stream0.src:corrupt@5;\
                    stream0.src:drop@10..20,stream2.src:reorder@40+3,stream2.src:dup@7";
        let plan = SourceFaultPlan::parse(spec).unwrap();
        assert_eq!(plan.entries().len(), 5);
        assert_eq!(
            plan.entries()[0],
            SourceFaultEntry {
                stream: 1,
                fault: SourceFault::DisconnectAt {
                    at_frame: 100,
                    dur_ms: 500,
                },
            }
        );
        assert_eq!(
            plan.entries()[2].fault,
            SourceFault::DropRange { from: 10, to: 20 }
        );
        assert_eq!(
            plan.entries()[3].fault,
            SourceFault::ReorderAt {
                at_frame: 40,
                by: 3
            }
        );
        // Display re-emits the exact grammar
        for e in plan.entries() {
            let reparsed = SourceFaultPlan::parse(&e.to_string()).unwrap();
            assert_eq!(reparsed.entries()[0], *e);
        }
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(SourceFaultPlan::parse("src:corrupt@1").is_err());
        assert!(SourceFaultPlan::parse("stream0.sdd:corrupt@1").is_err());
        assert!(SourceFaultPlan::parse("stream0.src:melt@1").is_err());
        assert!(SourceFaultPlan::parse("stream0.src:disconnect@5").is_err());
        assert!(SourceFaultPlan::parse("stream0.src:disconnect@5+0ms").is_err());
        assert!(SourceFaultPlan::parse("stream0.src:drop@9..9").is_err());
        assert!(SourceFaultPlan::parse("stream0.src:reorder@5+0").is_err());
    }

    #[test]
    fn serde_round_trip() {
        let plan = SourceFaultPlan::parse("stream0.src:disconnect@10+250ms,stream1.src:drop@0..5")
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: SourceFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn one_shots_fire_once_even_across_clones() {
        let plan = SourceFaultPlan::new()
            .with(0, SourceFault::CorruptAt { at_frame: 5 })
            .with(
                0,
                SourceFault::DisconnectAt {
                    at_frame: 5,
                    dur_ms: 100,
                },
            );
        let inj = plan.injector(0);
        let resumed = inj.clone(); // a restarted worker shares fault state
        assert_eq!(inj.action(4), SourceAction::Deliver);
        assert!(inj.disconnects_before(4).is_empty());
        assert_eq!(resumed.disconnects_before(5), vec![100]);
        assert!(inj.disconnects_before(6).is_empty());
        assert_eq!(inj.action(5), SourceAction::Corrupt);
        assert_eq!(resumed.action(6), SourceAction::Deliver);
    }

    #[test]
    fn injector_coordinates_and_noop() {
        let plan = SourceFaultPlan::new().with(2, SourceFault::DuplicateAt { at_frame: 1 });
        assert!(plan.injector(0).is_noop());
        assert!(!plan.injector(2).is_noop());
        assert!(SourceFaultPlan::new().is_empty());
    }

    #[test]
    fn fast_forward_expires_only_past_one_shots() {
        let plan = SourceFaultPlan::new()
            .with(0, SourceFault::CorruptAt { at_frame: 5 })
            .with(0, SourceFault::DuplicateAt { at_frame: 50 });
        let inj = plan.injector(0);
        inj.fast_forward(10);
        // corrupt@5 already accounted pre-resume; dup@50 still pending
        assert_eq!(inj.action(10), SourceAction::Deliver);
        assert_eq!(inj.action(50), SourceAction::Duplicate);
    }

    fn feed_all(turb: &mut Turbulence<u64>, n: u64) -> Vec<SourceEvent<u64>> {
        let mut events: Vec<SourceEvent<u64>> = Vec::new();
        for seq in 0..n {
            events.extend(turb.feed(seq, seq));
        }
        events.extend(turb.finish());
        events
    }

    fn delivered_seqs(events: &[SourceEvent<u64>]) -> Vec<u64> {
        events
            .iter()
            .filter_map(|e| match e {
                SourceEvent::Frame { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn turbulence_reorders_within_the_window() {
        let inj = SourceFaultPlan::new()
            .with(0, SourceFault::ReorderAt { at_frame: 3, by: 2 })
            .injector(0);
        let events = feed_all(&mut Turbulence::new(inj), 8);
        // frame 3 held until two later frames delivered: 0 1 2 4 5 3 6 7
        assert_eq!(delivered_seqs(&events), vec![0, 1, 2, 4, 5, 3, 6, 7]);
    }

    #[test]
    fn turbulence_flushes_holds_at_end_of_stream() {
        let inj = SourceFaultPlan::new()
            .with(
                0,
                SourceFault::ReorderAt {
                    at_frame: 4,
                    by: 100,
                },
            )
            .injector(0);
        let events = feed_all(&mut Turbulence::new(inj), 6);
        assert_eq!(delivered_seqs(&events), vec![0, 1, 2, 3, 5, 4]);
    }

    #[test]
    fn turbulence_drops_dups_and_corrupts() {
        let inj = SourceFaultPlan::new()
            .with(0, SourceFault::DropRange { from: 1, to: 3 })
            .with(0, SourceFault::DuplicateAt { at_frame: 4 })
            .with(0, SourceFault::CorruptAt { at_frame: 5 })
            .injector(0);
        let mut turb = Turbulence::new(inj);
        let events = feed_all(&mut turb, 6);
        assert_eq!(delivered_seqs(&events), vec![0, 3, 4, 4, 5]);
        assert_eq!(turb.dropped(), 2);
        let corrupt: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                SourceEvent::Frame {
                    seq, corrupt: true, ..
                } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(corrupt, vec![5]);
        assert!(events
            .iter()
            .any(|e| matches!(e, SourceEvent::Dropped { seq: 1 })));
    }

    #[test]
    fn reconnect_arithmetic_caps_and_exhausts() {
        let policy = ReconnectPolicy {
            retry_budget: 6,
            backoff_ms: 50,
            backoff_cap_ms: 1000,
        };
        // 500 ms outage: 50+100+200+400 = 750 >= 500 after 4 attempts
        assert_eq!(
            plan_reconnect(500, policy),
            ReconnectOutcome::Reconnected {
                attempts: 4,
                waited_ms: 750,
            }
        );
        // budget covers at most 50+100+200+400+800+1000 = 2550 ms
        assert_eq!(
            plan_reconnect(60_000, policy),
            ReconnectOutcome::Lost {
                attempts: 6,
                waited_ms: 2550,
            }
        );
        // zero budget loses immediately
        assert_eq!(
            plan_reconnect(
                1,
                ReconnectPolicy {
                    retry_budget: 0,
                    backoff_ms: 50,
                    backoff_cap_ms: 1000,
                }
            ),
            ReconnectOutcome::Lost {
                attempts: 0,
                waited_ms: 0,
            }
        );
        // determinism: same inputs, same outcome
        assert_eq!(plan_reconnect(500, policy), plan_reconnect(500, policy));
    }

    fn tiny_clip(n: usize) -> Vec<LabeledFrame> {
        let mut cam = VideoStream::new(7, workloads::test_tiny(ObjectClass::Car, 0.3, 7));
        cam.clip(n)
    }

    #[test]
    fn clip_source_tracks_position_and_resumes() {
        let clip = tiny_clip(10);
        let mut src = ClipSource::new(clip.clone());
        assert_eq!(src.position(), 0);
        assert_eq!(src.next_frame().unwrap().frame.seq, clip[0].frame.seq);
        assert_eq!(src.position(), 1);

        let mut resumed = ClipSource::starting_at(clip.clone(), 4);
        assert_eq!(resumed.position(), 4);
        assert_eq!(resumed.next_frame().unwrap().frame.seq, clip[4].frame.seq);
        let mut rest = 1;
        while resumed.next_frame().is_some() {
            rest += 1;
        }
        assert_eq!(rest as usize, clip.len() - 4);
    }

    #[test]
    fn generator_source_bounds_the_stream() {
        let cam = VideoStream::new(3, workloads::test_tiny(ObjectClass::Car, 0.3, 3));
        let mut src = GeneratorSource::new(cam, 5);
        let mut n = 0;
        while src.next_frame().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert_eq!(src.position(), 5);
    }

    #[test]
    fn unreliable_source_corrupts_bytes_but_claims_original_checksum() {
        let clip = tiny_clip(6);
        let inj = SourceFaultPlan::new()
            .with(0, SourceFault::CorruptAt { at_frame: 2 })
            .injector(0);
        let mut src = UnreliableSource::new(ClipSource::new(clip), inj);
        let mut seen = 0;
        let mut corrupt_seqs = Vec::new();
        loop {
            match src.next_item() {
                SourceItem::Frame {
                    lf,
                    claimed_checksum,
                } => {
                    seen += 1;
                    if frame_checksum(&lf.frame) != claimed_checksum {
                        corrupt_seqs.push(lf.frame.seq);
                    }
                }
                SourceItem::End => break,
                SourceItem::Dropped { .. } | SourceItem::Disconnect { .. } => {}
            }
        }
        assert_eq!(seen, 6);
        assert_eq!(corrupt_seqs, vec![2]);
        assert_eq!(src.position(), 6);
    }

    #[test]
    fn unreliable_source_emits_disconnect_then_the_frame() {
        let clip = tiny_clip(4);
        let inj = SourceFaultPlan::new()
            .with(
                0,
                SourceFault::DisconnectAt {
                    at_frame: 2,
                    dur_ms: 300,
                },
            )
            .injector(0);
        let mut src = UnreliableSource::new(ClipSource::new(clip), inj);
        let mut log = Vec::new();
        loop {
            match src.next_item() {
                SourceItem::Frame { lf, .. } => log.push(format!("f{}", lf.frame.seq)),
                SourceItem::Disconnect { dur_ms } => log.push(format!("d{dur_ms}")),
                SourceItem::Dropped { seq } => log.push(format!("x{seq}")),
                SourceItem::End => break,
            }
        }
        assert_eq!(log, vec!["f0", "f1", "d300", "f2", "f3"]);
    }

    fn fast_reconnect() -> ReconnectPolicy {
        ReconnectPolicy {
            retry_budget: 6,
            backoff_ms: 2,
            backoff_cap_ms: 10,
        }
    }

    fn io_timeout() -> std::time::Duration {
        std::time::Duration::from_millis(2000)
    }

    fn pull_all(src: &mut SocketSource) -> Vec<LabeledFrame> {
        let mut out = Vec::new();
        while let Some(lf) = src.next_frame() {
            out.push(lf);
        }
        out
    }

    #[test]
    fn wire_codec_round_trips_and_rejects_damage() {
        let clip = tiny_clip(3);
        let header = WireHeader {
            stream: clip[0].frame.stream,
            width: clip[0].frame.width,
            height: clip[0].frame.height,
            format: clip[0].frame.format,
            total: clip.len() as u64,
        };
        for lf in &clip {
            let rec = encode_wire_frame(lf);
            let back = decode_wire_frame(&rec, &header).unwrap();
            assert_eq!(back.frame.seq, lf.frame.seq);
            assert_eq!(back.frame.pts_ms, lf.frame.pts_ms);
            assert_eq!(back.frame.pixels(), lf.frame.pixels());
            assert_eq!(
                back.truth.count(ObjectClass::Car),
                lf.truth.count(ObjectClass::Car)
            );
            // any flipped byte fails the checksum; truncation fails framing
            let mut torn = rec.clone();
            torn[rec.len() / 2] ^= 0xFF;
            assert!(decode_wire_frame(&torn, &header).is_err());
            assert!(decode_wire_frame(&rec[..rec.len() - 1], &header).is_err());
        }
    }

    #[test]
    fn socket_source_streams_a_clip_bit_identical() {
        let clip = tiny_clip(8);
        let (addr, server) =
            spawn_frame_server(clip.clone(), FrameServerOptions::default()).unwrap();
        let mut src = SocketSource::new(addr.to_string(), fast_reconnect(), io_timeout());
        let got = pull_all(&mut src);
        server.join().unwrap();
        assert_eq!(got.len(), clip.len());
        for (g, want) in got.iter().zip(&clip) {
            assert_eq!(g.frame.seq, want.frame.seq);
            assert_eq!(g.frame.pixels(), want.frame.pixels());
        }
        assert_eq!(src.position(), 8);
        assert_eq!(src.announced_total(), Some(8));
        assert!(!src.lost());
    }

    #[test]
    fn socket_source_rides_out_mid_stream_disconnects() {
        let clip = tiny_clip(10);
        // every connection is cut after 4 records: the client must redial
        // (at its current position) at least twice to drain 10 frames
        let (addr, server) = spawn_frame_server(
            clip.clone(),
            FrameServerOptions {
                disconnect_after: Some(4),
                max_conns: None,
            },
        )
        .unwrap();
        let mut src = SocketSource::new(addr.to_string(), fast_reconnect(), io_timeout());
        let got = pull_all(&mut src);
        server.join().unwrap();
        let seqs: Vec<u64> = got.iter().map(|lf| lf.frame.seq).collect();
        let want: Vec<u64> = clip.iter().map(|lf| lf.frame.seq).collect();
        assert_eq!(seqs, want, "reconnects must not duplicate or skip");
        assert!(src.reconnects() >= 2, "got {}", src.reconnects());
        assert!(!src.lost());
    }

    #[test]
    fn socket_source_degrades_to_lost_when_the_server_goes_away() {
        let clip = tiny_clip(10);
        // one connection only, cut after 3 records; redials are refused
        let (addr, server) = spawn_frame_server(
            clip,
            FrameServerOptions {
                disconnect_after: Some(3),
                max_conns: Some(1),
            },
        )
        .unwrap();
        let mut src = SocketSource::new(
            addr.to_string(),
            ReconnectPolicy {
                retry_budget: 2,
                backoff_ms: 2,
                backoff_cap_ms: 4,
            },
            io_timeout(),
        );
        let got = pull_all(&mut src);
        server.join().unwrap();
        assert_eq!(got.len(), 3, "partial delivery before the loss");
        assert!(src.lost(), "budget exhaustion must mark the source lost");
        assert_eq!(src.position(), 3);
        assert!(src.next_frame().is_none(), "lost is terminal");
    }

    #[test]
    fn socket_source_resumes_at_a_checkpoint_cursor() {
        let clip = tiny_clip(9);
        let (addr, server) =
            spawn_frame_server(clip.clone(), FrameServerOptions::default()).unwrap();
        let mut src =
            SocketSource::new(addr.to_string(), fast_reconnect(), io_timeout()).resume_at(5);
        assert_eq!(src.position(), 5);
        let got = pull_all(&mut src);
        server.join().unwrap();
        let seqs: Vec<u64> = got.iter().map(|lf| lf.frame.seq).collect();
        let want: Vec<u64> = clip[5..].iter().map(|lf| lf.frame.seq).collect();
        assert_eq!(seqs, want);
        assert_eq!(src.position(), 9);
    }

    #[test]
    fn unreliable_source_composes_over_a_socket() {
        // the deterministic fault grammar applies to a network-attached
        // source exactly as it does to a local clip
        let clip = tiny_clip(6);
        let (addr, server) = spawn_frame_server(clip, FrameServerOptions::default()).unwrap();
        let inj = SourceFaultPlan::new()
            .with(0, SourceFault::CorruptAt { at_frame: 2 })
            .injector(0);
        let sock = SocketSource::new(addr.to_string(), fast_reconnect(), io_timeout());
        let mut src = UnreliableSource::new(sock, inj);
        let mut corrupt_seqs = Vec::new();
        let mut seen = 0;
        loop {
            match src.next_item() {
                SourceItem::Frame {
                    lf,
                    claimed_checksum,
                } => {
                    seen += 1;
                    if frame_checksum(&lf.frame) != claimed_checksum {
                        corrupt_seqs.push(lf.frame.seq);
                    }
                }
                SourceItem::End => break,
                SourceItem::Dropped { .. } | SourceItem::Disconnect { .. } => {}
            }
        }
        server.join().unwrap();
        assert_eq!(seen, 6);
        assert_eq!(corrupt_seqs, vec![2]);
        assert_eq!(src.position(), 6);
    }

    #[test]
    fn abandon_counts_everything_not_yet_delivered() {
        let clip = tiny_clip(10);
        let inj = SourceFaultPlan::new()
            .with(
                0,
                SourceFault::ReorderAt {
                    at_frame: 1,
                    by: 50,
                },
            )
            .injector(0);
        let mut src = UnreliableSource::new(ClipSource::new(clip), inj);
        // pull two deliveries (frames 0 and 2; frame 1 is held back)
        let mut delivered = 0;
        while delivered < 2 {
            if let SourceItem::Frame { .. } = src.next_item() {
                delivered += 1;
            }
        }
        // held frame 1 + unread frames 4..10 (frame 3 may sit in the queue)
        let lost = src.abandon();
        assert_eq!(delivered as u64 + lost + src.dropped(), 10);
        assert!(matches!(src.next_item(), SourceItem::End));
    }
}
