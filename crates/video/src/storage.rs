//! On-disk clip storage with streaming readers.
//!
//! §5.2: offline analysis processes a 55 GB day-long file with under 8 GB of
//! CPU memory, and §5.5 proposes temporarily spilling burst frames "in the
//! storage system, to be processed later". Both need a frame container that
//! can be written incrementally and read back as a stream with O(1) memory.
//!
//! Format (`FFSV1`): a JSON header line with the stream geometry, then one
//! record per frame — sequence number, timestamp, ground-truth JSON, and
//! RLE-compressed Gray8 pixels (how well RLE does depends on sensor noise;
//! the reader never needs more than one frame in memory either way).
//! Container version 2 (header field `version`, same magic) appends a
//! 64-bit FNV-1a checksum to every record so torn writes and bit rot are
//! detected instead of decoded into garbage; v1 files remain readable.

use crate::checksum::{fnv1a_continue, FNV_OFFSET};
use crate::frame::{Frame, PixelFormat};
use crate::generator::LabeledFrame;
use crate::truth::GroundTruth;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 6] = b"FFSV1\n";

/// Container version stamped by [`ClipWriter`]. Version 2 adds a per-record
/// FNV-1a checksum; version 1 files (written before the field existed) have
/// none and remain readable.
pub const CLIP_VERSION: u32 = 2;

fn clip_version_v1() -> u32 {
    1
}

/// Clip-level metadata stored in the header.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ClipHeader {
    pub width: usize,
    pub height: usize,
    pub fps: u32,
    pub stream: u32,
    /// Pixel layout of the stored frames (defaults to Gray8 for files
    /// written by earlier versions).
    #[serde(default)]
    pub format: PixelFormat,
    /// Container version. Headers written before the field existed
    /// deserialize as 1 (no record checksums); the writer always stamps
    /// [`CLIP_VERSION`].
    #[serde(default = "clip_version_v1")]
    pub version: u32,
}

/// A record failed integrity checks: truncated mid-frame, undecodable, or
/// checksum mismatch. Carried inside an [`io::Error`] of kind
/// [`io::ErrorKind::InvalidData`]; downcast to recover the failing index:
///
/// ```ignore
/// err.get_ref().and_then(|e| e.downcast_ref::<ClipIntegrityError>())
/// ```
#[derive(Debug)]
pub struct ClipIntegrityError {
    /// Zero-based index of the record that failed (frames successfully read
    /// before the damage).
    pub frame_index: u64,
    /// Human-readable description of the damage.
    pub detail: String,
}

impl fmt::Display for ClipIntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clip record {} corrupt: {}",
            self.frame_index, self.detail
        )
    }
}

impl std::error::Error for ClipIntegrityError {}

/// FNV-1a over the serialized record fields (exactly the bytes on disk
/// between the seq field and the checksum itself).
fn record_checksum(seq: u64, pts_ms: u64, truth: &[u8], rle: &[u8]) -> u64 {
    let mut h = fnv1a_continue(FNV_OFFSET, &seq.to_le_bytes());
    h = fnv1a_continue(h, &pts_ms.to_le_bytes());
    h = fnv1a_continue(h, truth);
    fnv1a_continue(h, rle)
}

/// Run-length encode a Gray8 buffer as (count, value) pairs.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2);
    let mut i = 0;
    while i < data.len() {
        let v = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == v && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(v);
        i += run;
    }
    out
}

/// Decode RLE back into a buffer of exactly `expect` bytes. Total work and
/// allocation are bounded by `expect` no matter what `encoded` contains:
/// malformed input returns `Err`, never a panic or an oversized buffer.
pub fn rle_decode(encoded: &[u8], expect: usize) -> io::Result<Vec<u8>> {
    if !encoded.len().is_multiple_of(2) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "odd RLE length"));
    }
    let mut out = Vec::with_capacity(expect);
    for pair in encoded.chunks(2) {
        let (run, v) = (pair[0] as usize, pair[1]);
        if run == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "zero-length run",
            ));
        }
        // Bail before growing past the declared length: adversarial input
        // must not be able to allocate more than `expect` bytes.
        if out.len() + run > expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("RLE overruns declared length {expect}"),
            ));
        }
        out.resize(out.len() + run, v);
    }
    if out.len() != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("RLE decoded {} bytes, expected {}", out.len(), expect),
        ));
    }
    Ok(out)
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Incremental clip writer.
pub struct ClipWriter {
    out: BufWriter<File>,
    header: ClipHeader,
    frames: u64,
}

impl ClipWriter {
    /// Create a clip file and write its header. The header is always
    /// stamped with the current [`CLIP_VERSION`] regardless of what the
    /// caller passed — only the reader honours older versions.
    pub fn create(path: &Path, mut header: ClipHeader) -> io::Result<Self> {
        header.version = CLIP_VERSION;
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        let hjson = serde_json::to_string(&header).expect("serializable header");
        write_u32(&mut out, hjson.len() as u32)?;
        out.write_all(hjson.as_bytes())?;
        Ok(ClipWriter {
            out,
            header,
            frames: 0,
        })
    }

    /// Append one labeled frame.
    ///
    /// # Panics
    /// Panics if the frame geometry does not match the header.
    pub fn write(&mut self, lf: &LabeledFrame) -> io::Result<()> {
        assert_eq!(lf.frame.width, self.header.width, "frame width");
        assert_eq!(lf.frame.height, self.header.height, "frame height");
        assert_eq!(lf.frame.format, self.header.format, "pixel format");
        write_u64(&mut self.out, lf.frame.seq)?;
        write_u64(&mut self.out, lf.frame.pts_ms)?;
        let truth = serde_json::to_vec(&lf.truth).expect("serializable truth");
        write_u32(&mut self.out, truth.len() as u32)?;
        self.out.write_all(&truth)?;
        let rle = rle_encode(lf.frame.pixels());
        write_u32(&mut self.out, rle.len() as u32)?;
        self.out.write_all(&rle)?;
        if self.header.version >= 2 {
            let sum = record_checksum(lf.frame.seq, lf.frame.pts_ms, &truth, &rle);
            write_u64(&mut self.out, sum)?;
        }
        self.frames += 1;
        Ok(())
    }

    /// Flush and close; returns the number of frames written.
    pub fn finish(mut self) -> io::Result<u64> {
        self.out.flush()?;
        Ok(self.frames)
    }
}

/// Streaming clip reader: an iterator holding one frame at a time.
pub struct ClipReader {
    input: BufReader<File>,
    pub header: ClipHeader,
    /// Records successfully read so far (the index reported on damage).
    index: u64,
}

impl ClipReader {
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut input = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 6];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an FFSV1 clip",
            ));
        }
        let hlen = read_u32(&mut input)? as usize;
        if hlen > 1 << 20 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header too large",
            ));
        }
        let mut hjson = vec![0u8; hlen];
        input.read_exact(&mut hjson)?;
        let header: ClipHeader = serde_json::from_slice(&hjson)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(ClipReader {
            input,
            header,
            index: 0,
        })
    }

    /// Wrap damage at the current record into a typed, downcastable error.
    fn integrity(&self, detail: impl Into<String>) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            ClipIntegrityError {
                frame_index: self.index,
                detail: detail.into(),
            },
        )
    }

    /// Mid-record EOF means a torn tail, not a clean end of stream.
    fn torn(&self, e: io::Error) -> io::Error {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            self.integrity("record truncated mid-frame")
        } else {
            e
        }
    }

    fn read_frame(&mut self) -> io::Result<Option<LabeledFrame>> {
        let seq = match read_u64(&mut self.input) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        };
        let pts_ms = read_u64(&mut self.input).map_err(|e| self.torn(e))?;
        let tlen = read_u32(&mut self.input).map_err(|e| self.torn(e))? as usize;
        let mut tjson = vec![0u8; tlen];
        self.input
            .read_exact(&mut tjson)
            .map_err(|e| self.torn(e))?;
        let truth: GroundTruth =
            serde_json::from_slice(&tjson).map_err(|e| self.integrity(e.to_string()))?;
        let rlen = read_u32(&mut self.input).map_err(|e| self.torn(e))? as usize;
        let mut rle = vec![0u8; rlen];
        self.input.read_exact(&mut rle).map_err(|e| self.torn(e))?;
        if self.header.version >= 2 {
            let stored = read_u64(&mut self.input).map_err(|e| self.torn(e))?;
            let computed = record_checksum(seq, pts_ms, &tjson, &rle);
            if stored != computed {
                return Err(self.integrity(format!(
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )));
            }
        }
        let expect = self.header.width * self.header.height * self.header.format.bytes_per_pixel();
        let pixels = rle_decode(&rle, expect).map_err(|e| self.integrity(e.to_string()))?;
        let frame = match self.header.format {
            PixelFormat::Gray8 => Frame::gray8(
                self.header.stream,
                seq,
                pts_ms,
                self.header.width,
                self.header.height,
                pixels,
            ),
            PixelFormat::Rgb8 => Frame::rgb8(
                self.header.stream,
                seq,
                pts_ms,
                self.header.width,
                self.header.height,
                pixels,
            ),
        };
        self.index += 1;
        Ok(Some(LabeledFrame { frame, truth }))
    }
}

impl Iterator for ClipReader {
    type Item = io::Result<LabeledFrame>;
    fn next(&mut self) -> Option<Self::Item> {
        self.read_frame().transpose()
    }
}

/// Convenience: write a whole clip.
pub fn write_clip(path: &Path, clip: &[LabeledFrame], fps: u32) -> io::Result<u64> {
    let first = clip.first().expect("non-empty clip");
    let mut w = ClipWriter::create(
        path,
        ClipHeader {
            width: first.frame.width,
            height: first.frame.height,
            fps,
            stream: first.frame.stream,
            format: first.frame.format,
            version: CLIP_VERSION,
        },
    )?;
    for lf in clip {
        w.write(lf)?;
    }
    w.finish()
}

/// Convenience: read a whole clip into memory.
pub fn read_clip(path: &Path) -> io::Result<Vec<LabeledFrame>> {
    ClipReader::open(path)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::VideoStream;
    use crate::truth::ObjectClass;
    use crate::workloads;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ffsva_storage_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn rle_roundtrip_structured() {
        let data = vec![5u8; 1000];
        let enc = rle_encode(&data);
        assert!(enc.len() < 20);
        assert_eq!(rle_decode(&enc, 1000).unwrap(), data);
    }

    #[test]
    fn rle_roundtrip_alternating_worst_case() {
        let data: Vec<u8> = (0..501).map(|i| (i % 2) as u8).collect();
        let enc = rle_encode(&data);
        assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
    }

    #[test]
    fn rle_rejects_corrupt_streams() {
        assert!(rle_decode(&[1], 1).is_err()); // odd length
        assert!(rle_decode(&[0, 7], 0).is_err()); // zero run
        assert!(rle_decode(&[2, 7], 5).is_err()); // wrong total
    }

    #[test]
    fn clip_roundtrip_preserves_everything() {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.5, 17);
        let mut s = VideoStream::new(9, cfg);
        let clip = s.clip(40);
        let path = tmp("roundtrip.ffsv");
        let n = write_clip(&path, &clip, 30).unwrap();
        assert_eq!(n, 40);
        let back = read_clip(&path).unwrap();
        assert_eq!(back.len(), clip.len());
        for (a, b) in clip.iter().zip(back.iter()) {
            assert_eq!(a.frame.seq, b.frame.seq);
            assert_eq!(a.frame.pts_ms, b.frame.pts_ms);
            assert_eq!(a.frame.stream, b.frame.stream);
            assert_eq!(a.frame.pixels(), b.frame.pixels());
            assert_eq!(a.truth.objects.len(), b.truth.objects.len());
            for (x, y) in a.truth.objects.iter().zip(b.truth.objects.iter()) {
                assert_eq!(x.class, y.class);
                assert!((x.cx - y.cx).abs() < 1e-6);
            }
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reader_is_streaming_not_loading() {
        // The iterator yields frames one at a time; consuming only a prefix
        // must work (no count in the header to depend on).
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.2, 18);
        let mut s = VideoStream::new(0, cfg);
        let clip = s.clip(30);
        let path = tmp("stream.ffsv");
        write_clip(&path, &clip, 30).unwrap();
        let mut reader = ClipReader::open(&path).unwrap();
        assert_eq!(reader.header.fps, 30);
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.frame.seq, 0);
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.frame.seq, 1);
        drop(reader);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn color_clip_roundtrips() {
        let mut cfg = workloads::test_tiny(ObjectClass::Car, 0.5, 19);
        cfg.color = true;
        let mut s = VideoStream::new(2, cfg);
        let clip = s.clip(12);
        assert_eq!(clip[0].frame.format, crate::frame::PixelFormat::Rgb8);
        let path = tmp("color.ffsv");
        write_clip(&path, &clip, 30).unwrap();
        let back = read_clip(&path).unwrap();
        assert_eq!(back.len(), 12);
        for (a, b) in clip.iter().zip(back.iter()) {
            assert_eq!(a.frame.format, b.frame.format);
            assert_eq!(a.frame.pixels(), b.frame.pixels());
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage.ffsv");
        std::fs::write(&path, b"not a clip at all").unwrap();
        assert!(ClipReader::open(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rle_decode_never_allocates_past_declared_length() {
        // a stream of max runs that would decode to 510 bytes must bail the
        // moment it would exceed the declared 10
        assert!(rle_decode(&[255, 7, 255, 7], 10).is_err());
        // exact fit still works
        assert_eq!(rle_decode(&[255, 7], 255).unwrap(), vec![7u8; 255]);
    }

    fn integrity_of(err: &io::Error) -> &ClipIntegrityError {
        err.get_ref()
            .and_then(|e| e.downcast_ref::<ClipIntegrityError>())
            .expect("a typed ClipIntegrityError")
    }

    fn small_clip(seed: u64) -> Vec<LabeledFrame> {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.5, seed);
        VideoStream::new(seed as u32, cfg).clip(5)
    }

    #[test]
    fn v2_checksum_catches_a_flipped_bit() {
        let clip = small_clip(21);
        let path = tmp("bitflip.ffsv");
        write_clip(&path, &clip, 30).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // flip a bit in the last record's trailing checksum
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let results: Vec<_> = ClipReader::open(&path).unwrap().collect();
        assert_eq!(results.len(), 5);
        assert!(results[..4].iter().all(|r| r.is_ok()));
        let err = results[4].as_ref().unwrap_err();
        let det = integrity_of(err);
        assert_eq!(det.frame_index, 4);
        assert!(det.detail.contains("checksum mismatch"), "{}", det.detail);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn v2_truncated_tail_is_a_typed_error_not_garbage() {
        let clip = small_clip(22);
        let path = tmp("torn.ffsv");
        write_clip(&path, &clip, 30).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let results: Vec<_> = ClipReader::open(&path).unwrap().collect();
        assert_eq!(results.len(), 5);
        let err = results[4].as_ref().unwrap_err();
        let det = integrity_of(err);
        assert_eq!(det.frame_index, 4);
        assert!(det.detail.contains("truncated"), "{}", det.detail);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn v1_files_without_checksums_still_read() {
        // hand-write a v1 file: header has no `version` field and records
        // have no trailing checksum
        let clip = small_clip(23);
        let path = tmp("v1compat.ffsv");
        {
            let mut out = BufWriter::new(File::create(&path).unwrap());
            out.write_all(MAGIC).unwrap();
            let f0 = &clip[0].frame;
            let hjson = format!(
                r#"{{"width":{},"height":{},"fps":30,"stream":{}}}"#,
                f0.width, f0.height, f0.stream
            );
            write_u32(&mut out, hjson.len() as u32).unwrap();
            out.write_all(hjson.as_bytes()).unwrap();
            for lf in &clip {
                write_u64(&mut out, lf.frame.seq).unwrap();
                write_u64(&mut out, lf.frame.pts_ms).unwrap();
                let truth = serde_json::to_vec(&lf.truth).unwrap();
                write_u32(&mut out, truth.len() as u32).unwrap();
                out.write_all(&truth).unwrap();
                let rle = rle_encode(lf.frame.pixels());
                write_u32(&mut out, rle.len() as u32).unwrap();
                out.write_all(&rle).unwrap();
            }
            out.flush().unwrap();
        }
        let reader = ClipReader::open(&path).unwrap();
        assert_eq!(reader.header.version, 1);
        let back: Vec<_> = reader.collect::<io::Result<_>>().unwrap();
        assert_eq!(back.len(), clip.len());
        for (a, b) in clip.iter().zip(back.iter()) {
            assert_eq!(a.frame.pixels(), b.frame.pixels());
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn writer_stamps_current_version() {
        let clip = small_clip(24);
        let path = tmp("stamped.ffsv");
        write_clip(&path, &clip, 30).unwrap();
        let reader = ClipReader::open(&path).unwrap();
        assert_eq!(reader.header.version, CLIP_VERSION);
        std::fs::remove_file(path).unwrap();
    }
}
