//! Ground-truth labels attached to generated frames.
//!
//! The paper labels frames with YOLOv2 and treats those labels as truth
//! (§4.1, §5.3). Our generator knows the truth exactly, so the reference
//! oracle and accuracy accounting are built on these records.

use serde::{Deserialize, Serialize};

/// Object classes that can appear in a scene. Matches the classes discussed
/// in the paper's workloads (Jackson: car/bus/truck; Coral: person) plus the
/// incidental classes T-YOLO's 20-class VOC head can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    Car,
    Bus,
    Truck,
    Person,
    Dog,
    Cat,
    Bicycle,
}

impl ObjectClass {
    /// All classes, in a fixed order (used as class ids by detectors).
    pub const ALL: [ObjectClass; 7] = [
        ObjectClass::Car,
        ObjectClass::Bus,
        ObjectClass::Truck,
        ObjectClass::Person,
        ObjectClass::Dog,
        ObjectClass::Cat,
        ObjectClass::Bicycle,
    ];

    /// Stable numeric id of the class.
    pub fn id(&self) -> usize {
        Self::ALL
            .iter()
            .position(|c| c == self)
            .expect("class in ALL")
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Bus => "bus",
            ObjectClass::Truck => "truck",
            ObjectClass::Person => "person",
            ObjectClass::Dog => "dog",
            ObjectClass::Cat => "cat",
            ObjectClass::Bicycle => "bicycle",
        }
    }
}

/// One labeled object in a frame. Coordinates are normalized to `[0, 1]`
/// relative to the frame; the box may extend beyond the frame edge, in which
/// case `visible_frac < 1` (a *partial appearance*, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GtObject {
    pub class: ObjectClass,
    /// Box center x (may be outside `[0,1]` while entering/leaving).
    pub cx: f32,
    /// Box center y.
    pub cy: f32,
    /// Box width.
    pub w: f32,
    /// Box height.
    pub h: f32,
    /// Fraction of the box area inside the frame, in `[0, 1]`.
    pub visible_frac: f32,
}

impl GtObject {
    /// True if any part of the object is inside the frame.
    pub fn is_visible(&self) -> bool {
        self.visible_frac > 0.0
    }

    /// True if the object is (almost) fully inside the frame.
    pub fn is_complete(&self) -> bool {
        self.visible_frac >= 0.95
    }

    /// Compute the visible fraction of a normalized box.
    pub fn compute_visible_frac(cx: f32, cy: f32, w: f32, h: f32) -> f32 {
        let x0 = (cx - w / 2.0).max(0.0);
        let x1 = (cx + w / 2.0).min(1.0);
        let y0 = (cy - h / 2.0).max(0.0);
        let y1 = (cy + h / 2.0).min(1.0);
        if x1 <= x0 || y1 <= y0 || w <= 0.0 || h <= 0.0 {
            0.0
        } else {
            // clamp: floating-point rounding can push a fully-inside box an
            // ulp above 1.0
            (((x1 - x0) * (y1 - y0)) / (w * h)).min(1.0)
        }
    }
}

/// Ground truth for one frame.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    pub objects: Vec<GtObject>,
}

impl GroundTruth {
    /// Number of *visible* objects of a class.
    pub fn count(&self, class: ObjectClass) -> usize {
        self.objects
            .iter()
            .filter(|o| o.class == class && o.is_visible())
            .count()
    }

    /// Number of *complete* (≥95 % visible) objects of a class.
    pub fn count_complete(&self, class: ObjectClass) -> usize {
        self.objects
            .iter()
            .filter(|o| o.class == class && o.is_complete())
            .count()
    }

    /// True if at least one visible object of the class is present.
    pub fn has(&self, class: ObjectClass) -> bool {
        self.count(class) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ids_are_stable_and_distinct() {
        let ids: Vec<usize> = ObjectClass::ALL.iter().map(|c| c.id()).collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
        assert_eq!(ObjectClass::Car.id(), 0);
        assert_eq!(ObjectClass::Person.id(), 3);
    }

    #[test]
    fn visible_frac_full_inside() {
        let f = GtObject::compute_visible_frac(0.5, 0.5, 0.2, 0.2);
        assert!((f - 1.0).abs() < 1e-6);
    }

    #[test]
    fn visible_frac_half_off_left_edge() {
        let f = GtObject::compute_visible_frac(0.0, 0.5, 0.2, 0.2);
        assert!((f - 0.5).abs() < 1e-6);
    }

    #[test]
    fn visible_frac_fully_outside() {
        let f = GtObject::compute_visible_frac(-0.5, 0.5, 0.2, 0.2);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn ground_truth_counting() {
        let gt = GroundTruth {
            objects: vec![
                GtObject {
                    class: ObjectClass::Car,
                    cx: 0.5,
                    cy: 0.5,
                    w: 0.1,
                    h: 0.1,
                    visible_frac: 1.0,
                },
                GtObject {
                    class: ObjectClass::Car,
                    cx: 0.0,
                    cy: 0.5,
                    w: 0.1,
                    h: 0.1,
                    visible_frac: 0.5,
                },
                GtObject {
                    class: ObjectClass::Person,
                    cx: 0.5,
                    cy: 0.5,
                    w: 0.05,
                    h: 0.1,
                    visible_frac: 0.0,
                },
            ],
        };
        assert_eq!(gt.count(ObjectClass::Car), 2);
        assert_eq!(gt.count_complete(ObjectClass::Car), 1);
        assert!(!gt.has(ObjectClass::Person)); // not visible
    }
}
