//! Workload presets matching Table 1 of the paper, plus parameterized
//! variants used throughout the evaluation figures.

use crate::generator::StreamConfig;
use crate::scene::BackgroundKind;
use crate::truth::ObjectClass;

/// *Jackson* (Table 1): 600×400, cars at a crossroad, 30 FPS, TOR 8 %.
/// Vehicles are large — a scene holds at most ~3 of them (Fig. 8a) — and the
/// street background has a day/night illumination cycle.
pub fn jackson() -> StreamConfig {
    StreamConfig {
        name: "jackson".into(),
        nominal_width: 600,
        nominal_height: 400,
        render_width: 300,
        render_height: 200,
        fps: 30,
        target: ObjectClass::Car,
        tor: 0.08,
        tor_spike: None,
        mean_scene_frames: 90.0,
        objects_per_scene: (1, 3),
        object_w: (0.16, 0.30),
        object_h: (0.12, 0.22),
        object_speed: 0.008,
        ambient_blobs: 3,
        ambient_intensity: (16.0, 32.0),
        ambient_size: (0.08, 0.20),
        distractor_rate: 0.002,
        distractor_classes: vec![ObjectClass::Person, ObjectClass::Dog, ObjectClass::Bicycle],
        background: BackgroundKind::Dynamic {
            period_frames: 60_000,
            amplitude: 0.5,
            drift_sigma: 0.0008,
        },
        noise_sigma: 2.5,
        color: false,
        seed: 0x4A43_4B53, // "JACK"
    }
}

/// *Coral* (Table 1): 1280×720, people at an aquarium, 30 FPS, TOR 50 %.
/// Persons are small and dense — crowds of many overlapping blobs — which is
/// exactly the regime where T-YOLO undercounts (Fig. 8b).
pub fn coral() -> StreamConfig {
    StreamConfig {
        name: "coral".into(),
        nominal_width: 1280,
        nominal_height: 720,
        render_width: 320,
        render_height: 180,
        fps: 30,
        target: ObjectClass::Person,
        tor: 0.50,
        tor_spike: None,
        mean_scene_frames: 240.0,
        objects_per_scene: (3, 14),
        object_w: (0.025, 0.06),
        object_h: (0.06, 0.13),
        object_speed: 0.004,
        ambient_blobs: 5,
        ambient_intensity: (18.0, 40.0),
        ambient_size: (0.02, 0.05),
        distractor_rate: 0.001,
        distractor_classes: vec![ObjectClass::Cat],
        background: BackgroundKind::Static,
        noise_sigma: 2.0,
        color: false,
        seed: 0x434F_5241, // "CORA"
    }
}

/// *Lobby*: an indoor hallway camera — medium-density persons, perfectly
/// static lighting, almost no ambient motion. The easiest regime for the
/// SDD and the hardest for the crowd-count filter; a useful third archetype
/// between the street and the aquarium.
pub fn lobby() -> StreamConfig {
    StreamConfig {
        name: "lobby".into(),
        nominal_width: 640,
        nominal_height: 480,
        render_width: 256,
        render_height: 192,
        fps: 30,
        target: ObjectClass::Person,
        tor: 0.25,
        tor_spike: None,
        mean_scene_frames: 150.0,
        objects_per_scene: (1, 6),
        object_w: (0.05, 0.10),
        object_h: (0.14, 0.24),
        object_speed: 0.006,
        ambient_blobs: 1,
        ambient_intensity: (8.0, 16.0),
        ambient_size: (0.04, 0.08),
        distractor_rate: 0.001,
        distractor_classes: vec![ObjectClass::Dog],
        background: BackgroundKind::Static,
        noise_sigma: 1.5,
        color: false,
        seed: 0x4C4F_4242, // "LOBB"
    }
}

/// Small/fast configuration for unit tests.
pub fn test_tiny(target: ObjectClass, tor: f64, seed: u64) -> StreamConfig {
    StreamConfig {
        name: format!("tiny-{}", target.name()),
        nominal_width: 64,
        nominal_height: 48,
        render_width: 64,
        render_height: 48,
        fps: 30,
        target,
        tor,
        tor_spike: None,
        mean_scene_frames: 40.0,
        objects_per_scene: match target {
            ObjectClass::Person => (2, 8),
            _ => (1, 3),
        },
        object_w: match target {
            ObjectClass::Person => (0.05, 0.1),
            _ => (0.18, 0.3),
        },
        object_h: match target {
            ObjectClass::Person => (0.1, 0.2),
            _ => (0.14, 0.24),
        },
        object_speed: 0.01,
        ambient_blobs: 1,
        ambient_intensity: (12.0, 20.0),
        ambient_size: (0.05, 0.1),
        distractor_rate: 0.002,
        distractor_classes: vec![ObjectClass::Dog],
        background: BackgroundKind::Static,
        noise_sigma: 1.5,
        color: false,
        seed,
    }
}

/// A city-block scenario: `k` cameras watching the same area. Each camera
/// gets its own viewpoint (seed) and base TOR; the cameras listed in
/// `incident_cams` all see the same incident — a TOR burst to
/// `incident_tor` during `incident_window` — the correlated-surge case that
/// stresses the shared T-YOLO and the §5.5 burst remedy.
pub fn city_block(
    k: usize,
    base_tor: f64,
    incident_cams: &[usize],
    incident_window: (u64, u64),
    incident_tor: f64,
) -> Vec<StreamConfig> {
    (0..k)
        .map(|i| {
            let mut cfg = jackson().with_tor(base_tor);
            cfg.name = format!("city-cam{}", i);
            cfg.seed = cfg.seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9));
            if incident_cams.contains(&i) {
                cfg = cfg.with_tor_spike(incident_window.0, incident_window.1, incident_tor);
            }
            cfg
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{measured_tor, VideoStream};

    #[test]
    fn table1_metadata_matches_paper() {
        let j = jackson();
        assert_eq!((j.nominal_width, j.nominal_height), (600, 400));
        assert_eq!(j.fps, 30);
        assert_eq!(j.target, ObjectClass::Car);
        assert!((j.tor - 0.08).abs() < 1e-9);

        let c = coral();
        assert_eq!((c.nominal_width, c.nominal_height), (1280, 720));
        assert_eq!(c.fps, 30);
        assert_eq!(c.target, ObjectClass::Person);
        assert!((c.tor - 0.5).abs() < 1e-9);
    }

    #[test]
    fn jackson_tor_converges_near_8_percent() {
        let mut s = VideoStream::new(0, jackson());
        let clip = s.clip(8000);
        let tor = measured_tor(&clip, ObjectClass::Car);
        assert!((tor - 0.08).abs() < 0.04, "measured {}", tor);
    }

    #[test]
    fn lobby_is_calm_and_person_targeted() {
        let l = lobby();
        assert_eq!(l.target, ObjectClass::Person);
        let mut s = VideoStream::new(0, l);
        let clip = s.clip(4000);
        let tor = measured_tor(&clip, ObjectClass::Person);
        assert!((tor - 0.25).abs() < 0.07, "measured {}", tor);
    }

    #[test]
    fn city_block_builds_distinct_cameras_with_correlated_incident() {
        let cams = city_block(4, 0.1, &[0, 2], (500, 900), 0.8);
        assert_eq!(cams.len(), 4);
        // distinct viewpoints
        let seeds: std::collections::HashSet<u64> = cams.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 4);
        // incident only on the named cameras
        assert_eq!(cams[0].tor_spike, Some((500, 900, 0.8)));
        assert!(cams[1].tor_spike.is_none());
        assert_eq!(cams[2].tor_spike, Some((500, 900, 0.8)));
        assert!(cams[3].tor_spike.is_none());
        assert_eq!(cams[3].name, "city-cam3");
    }

    #[test]
    fn coral_scenes_are_denser_than_jackson() {
        let mut sj = VideoStream::new(0, jackson().with_tor(0.5));
        let mut sc = VideoStream::new(1, coral());
        let cj = sj.clip(3000);
        let cc = sc.clip(3000);
        let max_cars = cj
            .iter()
            .map(|lf| lf.truth.count(ObjectClass::Car))
            .max()
            .unwrap();
        let max_people = cc
            .iter()
            .map(|lf| lf.truth.count(ObjectClass::Person))
            .max()
            .unwrap();
        assert!(max_cars <= 4, "cars {}", max_cars);
        assert!(max_people >= 6, "people {}", max_people);
    }
}
