//! Property-based tests for the video substrate: resize invariants, ground
//! truth geometry, and TOR controller behaviour under arbitrary parameters.

use ffsva_video::arrival::{ScenePhase, SceneProcess};
use ffsva_video::resize::{resize_bilinear, resize_nearest};
use ffsva_video::GtObject;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Resizing never invents values outside the source range.
    #[test]
    fn resize_respects_range(
        pixels in proptest::collection::vec(any::<u8>(), 16 * 12),
        dw in 1usize..40,
        dh in 1usize..40,
    ) {
        let lo = *pixels.iter().min().unwrap();
        let hi = *pixels.iter().max().unwrap();
        for out in [
            resize_bilinear(&pixels, 16, 12, dw, dh),
            resize_nearest(&pixels, 16, 12, dw, dh),
        ] {
            prop_assert_eq!(out.len(), dw * dh);
            prop_assert!(out.iter().all(|&p| p >= lo && p <= hi));
        }
    }

    /// Identity resize is exact for both kernels.
    #[test]
    fn resize_identity(pixels in proptest::collection::vec(any::<u8>(), 10 * 7)) {
        prop_assert_eq!(resize_bilinear(&pixels, 10, 7, 10, 7), pixels.clone());
        prop_assert_eq!(resize_nearest(&pixels, 10, 7, 10, 7), pixels);
    }

    /// Visible fraction is always in [0, 1] and monotone in how deep the
    /// object sits inside the frame.
    #[test]
    fn visible_frac_bounded(cx in -1.0f32..2.0, cy in -1.0f32..2.0, w in 0.01f32..0.9, h in 0.01f32..0.9) {
        let f = GtObject::compute_visible_frac(cx, cy, w, h);
        prop_assert!((0.0..=1.0 + 1e-5).contains(&f));
        // fully centered is never less visible
        let center = GtObject::compute_visible_frac(0.5, 0.5, w, h);
        prop_assert!(center >= f - 1e-5);
    }

    /// The TOR controller's achieved fraction is always a valid fraction and
    /// the phase machine never reports Draining while Idle frames dominate
    /// a zero-TOR stream.
    #[test]
    fn scene_process_invariants(tor in 0.0f64..1.0, mean in 1.0f64..200.0, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut p = SceneProcess::new(tor, mean);
        let mut visible = false;
        let mut started_prev = 0;
        for _ in 0..2000 {
            let phase = p.step(visible, &mut rng);
            visible = matches!(phase, ScenePhase::Active);
            let a = p.achieved();
            prop_assert!((0.0..=1.0).contains(&a));
            // scene counter is monotone
            prop_assert!(p.scenes_started() >= started_prev);
            started_prev = p.scenes_started();
        }
        if tor == 0.0 {
            prop_assert_eq!(p.scenes_started(), 0);
        }
    }

    /// Clip storage round-trips arbitrary pixel content exactly.
    #[test]
    fn storage_roundtrip_arbitrary_pixels(
        pixels in proptest::collection::vec(any::<u8>(), 6 * 4),
        seq in any::<u32>(),
    ) {
        use ffsva_video::storage::{read_clip, write_clip};
        use ffsva_video::{Frame, GroundTruth, LabeledFrame};
        let lf = LabeledFrame {
            frame: Frame::gray8(1, seq as u64, 0, 6, 4, pixels.clone()),
            truth: GroundTruth::default(),
        };
        let path = std::env::temp_dir().join(format!("ffsva_pt_{}.ffsv", seq));
        write_clip(&path, &[lf], 30).unwrap();
        let back = read_clip(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(back[0].frame.pixels(), &pixels[..]);
        prop_assert_eq!(back[0].frame.seq, seq as u64);
    }

    /// Arbitrary bytes fed to the RLE decoder never panic and never come
    /// back longer than the declared length — damage is an `Err`, and a
    /// successful decode is exactly `expect` bytes (the allocation is
    /// bounded by `expect` by construction).
    #[test]
    fn rle_decode_arbitrary_bytes_never_panics_or_overallocates(
        encoded in proptest::collection::vec(any::<u8>(), 0..512),
        expect in 0usize..4096,
    ) {
        use ffsva_video::storage::rle_decode;
        if let Ok(out) = rle_decode(&encoded, expect) {
            prop_assert_eq!(out.len(), expect);
        }
    }

    /// Decoding an honest encoding round-trips for any payload.
    #[test]
    fn rle_roundtrip_arbitrary_payload(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        use ffsva_video::storage::{rle_decode, rle_encode};
        let enc = rle_encode(&data);
        prop_assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
    }

    /// RGB luma stays within the channel extrema for arbitrary colors.
    #[test]
    fn rgb_luma_bounded_by_channels(rgb in proptest::collection::vec(any::<u8>(), 3 * 8)) {
        use ffsva_video::Frame;
        let f = Frame::rgb8(0, 0, 0, 8, 1, rgb.clone());
        let y = f.luma();
        for (i, &l) in y.iter().enumerate() {
            let (r, g, b) = (rgb[i * 3], rgb[i * 3 + 1], rgb[i * 3 + 2]);
            let lo = r.min(g).min(b);
            let hi = r.max(g).max(b);
            prop_assert!(l >= lo.saturating_sub(1) && l <= hi.saturating_add(1));
        }
    }

    /// Generated clips have exact metadata: sequential seq numbers, constant
    /// dimensions, pts consistent with the frame rate.
    #[test]
    fn clip_metadata_consistent(tor in 0.0f64..1.0, seed in any::<u64>()) {
        use ffsva_video::prelude::*;
        let cfg = workloads::test_tiny(ObjectClass::Car, tor, seed);
        let fps = cfg.fps as u64;
        let mut s = VideoStream::new(3, cfg);
        let clip = s.clip(40);
        for (i, lf) in clip.iter().enumerate() {
            prop_assert_eq!(lf.frame.seq, i as u64);
            prop_assert_eq!(lf.frame.stream, 3);
            prop_assert_eq!(lf.frame.pts_ms, i as u64 * 1000 / fps);
            prop_assert_eq!(lf.frame.num_pixels(), lf.frame.width * lf.frame.height);
            // every labeled object has a sane box
            for o in &lf.truth.objects {
                prop_assert!((0.0..=1.0).contains(&o.visible_frac));
                prop_assert!(o.w > 0.0 && o.h > 0.0);
            }
        }
    }
}
