//! A city block with several cameras and one shared T-YOLO — the full
//! multi-stream deployment of §3.2.3 on the *threaded* engine: per-camera
//! SDD/SNM threads, one detector thread visiting every camera's queue
//! round-robin (at most `num_tyolo` frames each), per-camera reference
//! stages. An incident (TOR burst) hits two cameras mid-run; watch the
//! shared detector keep serving everyone.
//!
//! ```text
//! cargo run --release --example city_incident
//! ```

use ffs_va::core::run_multi_pipeline_rt;
use ffs_va::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let cfg = FfsVaConfig::default();

    println!("training cascades for 4 cameras ...");
    let mut streams = Vec::new();
    let mut names = Vec::new();
    for cam_id in 0..4u64 {
        let mut vcfg = workloads::jackson().with_tor(0.12);
        vcfg.render_width = 150;
        vcfg.render_height = 100;
        vcfg.seed ^= cam_id.wrapping_mul(0x9E37);
        // cameras 0 and 1 both see the incident: a burst to TOR 0.8 during
        // frames 2100..2700 of the stream — inside the monitoring clip,
        // which covers frames 1500..3300 (the first 1500 train the cascade)
        if cam_id < 2 {
            vcfg = vcfg.with_tor_spike(2100, 2700, 0.8);
        }
        let mut cam = VideoStream::new(cam_id as u32, vcfg);
        let training = cam.clip(1500);
        let bank = FilterBank::build(
            &training,
            ObjectClass::Car,
            &BankOptions::default(),
            &mut rng,
        );
        let clip = cam.clip(1800);
        let tor = measured_tor(&clip, ObjectClass::Car);
        names.push(format!(
            "camera {} ({})",
            cam_id,
            if cam_id < 2 {
                "sees the incident"
            } else {
                "quiet"
            }
        ));
        println!("  camera {}: measured TOR {:.3}", cam_id, tor);
        streams.push((clip, bank));
    }

    println!("\nrunning 4 real pipelines with ONE shared T-YOLO thread ...");
    let r = run_multi_pipeline_rt(streams, &cfg);
    println!(
        "processed {} frames in {:.2}s ({:.0} FPS wall)",
        r.total_frames, r.wall_time_s, r.throughput_fps
    );
    println!(
        "stage totals: SDD {} -> SNM {} -> shared T-YOLO {} -> reference {}",
        r.stage_processed[0], r.stage_processed[1], r.stage_processed[2], r.stage_processed[3]
    );
    println!("\nalarms per camera:");
    for (name, survivors) in names.iter().zip(r.survivors.iter()) {
        let during_incident = survivors
            .iter()
            .filter(|s| (2100..2700).contains(&s.seq))
            .count();
        println!(
            "  {}: {} alarm frames ({} during the incident window)",
            name,
            survivors.len(),
            during_incident
        );
    }
    println!("\nthe incident cameras light up while the quiet cameras keep their normal trickle — one detector served all four.");
}
