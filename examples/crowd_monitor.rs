//! Crowd monitoring — the coral regime (§5.3): many small, dense persons.
//! T-YOLO genuinely undercounts crowds (grid quantization + per-cell box
//! cap), so strict object-count filtering is error-prone; relaxing the count
//! threshold by one or two objects recovers most of the accuracy at a small
//! efficiency cost — the paper's Fig. 8b trade-off, live.
//!
//! ```text
//! cargo run --release --example crowd_monitor
//! ```

use ffs_va::core::accuracy::evaluate_relaxed;
use ffs_va::core::StreamThresholds;
use ffs_va::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);

    // An aquarium-style camera: crowds of 3-10 small persons, always busy.
    let mut cfg = workloads::coral().with_tor(1.0);
    cfg.render_width = 160;
    cfg.render_height = 90;
    cfg.objects_per_scene = (3, 10);
    let mut camera = VideoStream::new(0, cfg);

    println!("training the aquarium cascade ...");
    let training = camera.clip(1800);
    let mut bank = FilterBank::build(
        &training,
        ObjectClass::Person,
        &BankOptions::default(),
        &mut rng,
    );

    let clip = camera.clip(900);
    let traces = bank.trace_clip(&clip);

    // How badly does T-YOLO undercount the crowd?
    let mut under = 0usize;
    let mut dense = 0usize;
    for tr in &traces {
        if tr.truth_count >= 5 {
            dense += 1;
            if tr.tyolo_count < tr.truth_count {
                under += 1;
            }
        }
    }
    println!(
        "\nT-YOLO undercounts {}/{} dense frames (>=5 persons) — the Fig. 8b failure mode",
        under, dense
    );

    // Alert on crowds of >= 5 persons; compare strict vs relaxed filtering.
    println!("\ncrowd alarm at NumberofObjects = 5:");
    let sys = FfsVaConfig::default().with_number_of_objects(5);
    let th = StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(sys.filter_degree),
        number_of_objects: sys.number_of_objects,
    };
    for relax in 0..=2 {
        let rep = evaluate_relaxed(&traces, &th, relax);
        println!(
            "  tolerate {} miscounted: {} frames forwarded, error rate {:.1}%, crowd scenes detected {}/{}",
            relax,
            rep.forwarded_frames,
            rep.error_rate * 100.0,
            rep.significant_scenes_detected,
            rep.significant_scenes,
        );
    }
    println!("\nrelaxing the threshold trades a few extra forwarded frames for a much lower miss rate (§5.3).");
}
