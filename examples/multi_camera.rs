//! Multi-camera deployment: how many live 30-FPS cameras does one FFS-VA
//! instance (2 CPUs + 2 GPUs) sustain, when does admission stop, and how
//! does stream re-forwarding rebalance overloaded instances (§4.3.1)?
//!
//! Runs on the calibrated discrete-event substrate so a city-scale what-if
//! finishes in seconds.
//!
//! ```text
//! cargo run --release --example multi_camera
//! ```

use ffs_va::core::{balance_instances_from, find_max_online_streams, has_spare_capacity};
use ffs_va::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let sys = FfsVaConfig::default();

    // Train cascades for three distinct cameras (kept small for speed), then
    // tile clips of them into many logical streams — §5.1's methodology.
    println!("preparing camera cascades ...");
    let mut pool = Vec::new();
    for i in 0..3u64 {
        let mut cfg = workloads::jackson().with_tor(0.10);
        cfg.render_width = 150;
        cfg.render_height = 100;
        cfg.seed ^= i.wrapping_mul(0x9E37);
        let mut cam = VideoStream::new(i as u32, cfg);
        let training = cam.clip(1500);
        let mut bank = FilterBank::build(
            &training,
            ObjectClass::Car,
            &BankOptions::default(),
            &mut rng,
        );
        let clip = cam.clip(2400);
        let traces = bank.trace_clip(&clip);
        pool.push(PreparedStream {
            name: format!("cam{}", i),
            target: ObjectClass::Car,
            traces,
            delta_diff: bank.sdd.delta_diff,
            c_low: bank.snm.c_low,
            c_high: bank.snm.c_high,
            measured_tor: 0.10,
            snm_accuracy: bank.snm_report.test_accuracy,
        });
    }

    // 1. Capacity of a single instance.
    let max = find_max_online_streams(&sys, |n| tile_inputs(&pool, n, &sys), 64);
    println!("\none instance sustains {} live 30-FPS cameras", max);

    // 2. Admission signal at various loads.
    for n in [max / 2, max, max + 4] {
        let r = Engine::new(sys, Mode::Online, tile_inputs(&pool, n.max(1), &sys)).run();
        println!(
            "  {:>2} cameras: T-YOLO {:.0} FPS, realtime {}, spare capacity for admission: {}",
            n,
            r.tyolo_fps,
            r.realtime(sys.online_fps),
            has_spare_capacity(&r, &sys)
        );
    }

    // 3. Re-forwarding: dump every camera on instance 0 first (a burst of
    // new deployments), then let the overload/spare signals move streams.
    let total = max + max / 2;
    println!(
        "\nplacing all {} cameras on instance 0, then re-forwarding away from overload ...",
        total
    );
    let streams = tile_inputs(&pool, total, &sys);
    let outcome = balance_instances_from(&sys, &streams, 2, 2 * total, vec![0; total]);
    let counts: Vec<usize> = (0..2)
        .map(|i| outcome.assignment.iter().filter(|&&a| a == i).count())
        .collect();
    println!(
        "  final assignment: instance0 = {} cameras, instance1 = {} cameras ({} re-forwarded), all realtime: {}",
        counts[0], counts[1], outcome.reforwarded, outcome.all_realtime
    );
}
