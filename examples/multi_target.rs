//! Multi-target detection — the §5.5 "Single Target Object" extension:
//! "if multiple target objects exist in a video stream, the structure of
//! the specialized network model only needs to be changed to support the
//! identification of all the target objects." One multi-class SNM replaces
//! a bank of per-class binary models.
//!
//! ```text
//! cargo run --release --example multi_target
//! ```

use ffs_va::models::snm_multi::train_multi_snm;
use ffs_va::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);

    // A camera that sees both cars (scenes) and dogs (wandering through).
    let mut cfg = workloads::test_tiny(ObjectClass::Car, 0.35, 321);
    cfg.render_width = 128;
    cfg.render_height = 96;
    cfg.distractor_rate = 0.015;
    cfg.distractor_classes = vec![ObjectClass::Dog];
    let mut camera = VideoStream::new(0, cfg);

    println!("training one multi-class SNM for {{car, dog}} ...");
    let clip = camera.clip(3500);
    let (mut model, report) = train_multi_snm(
        &clip,
        vec![ObjectClass::Car, ObjectClass::Dog],
        20,
        0.08,
        &mut rng,
    );
    println!(
        "  samples per class (background/car/dog): {:?}, held-out top-1 accuracy {:.3}",
        report.class_counts, report.test_accuracy
    );

    // Classify fresh frames and report what the camera saw, per class.
    let eval = camera.clip(1500);
    let mut by_class = [0usize; 3];
    for lf in &eval {
        match model.classify(&lf.frame) {
            None => by_class[0] += 1,
            Some(ObjectClass::Car) => by_class[1] += 1,
            Some(_) => by_class[2] += 1,
        }
    }
    println!(
        "\nover {} fresh frames the single model reported: {} background, {} car, {} dog",
        eval.len(),
        by_class[0],
        by_class[1],
        by_class[2]
    );
    let truth_car = eval
        .iter()
        .filter(|lf| lf.truth.count_complete(ObjectClass::Car) > 0)
        .count();
    let truth_dog = eval
        .iter()
        .filter(|lf| lf.truth.count_complete(ObjectClass::Dog) > 0)
        .count();
    println!(
        "ground truth for comparison: {} frames with complete cars, {} with complete dogs",
        truth_car, truth_dog
    );
    println!("\na single specialized model now routes per-class events — no second per-class cascade needed (§5.5).");
}
