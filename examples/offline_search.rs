//! Post-facto analysis (§1 use case 2): "look for a certain event or object
//! retroactively" in recorded footage. Records a surveillance clip to disk
//! in the streaming FFSV1 container, then scans it with the cascade —
//! reading one frame at a time, so a day-long file never has to fit in
//! memory (§5.2: a 55 GB file analyzed in under 8 GB of RAM).
//!
//! ```text
//! cargo run --release --example offline_search
//! ```

use ffs_va::core::accuracy::cascade_pass;
use ffs_va::core::{FfsVaConfig, StreamThresholds};
use ffs_va::prelude::*;
use ffs_va::video::storage::{write_clip, ClipReader};
use rand::SeedableRng;

fn main() {
    let dir = std::env::temp_dir().join("ffsva_offline_search");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("day.ffsv");

    // 1. Record: a camera writes its footage to disk.
    let mut vcfg = workloads::jackson().with_tor(0.25);
    vcfg.render_width = 150;
    vcfg.render_height = 100;
    let fps = vcfg.fps;
    let mut cam = VideoStream::new(0, vcfg);
    let train_clip = cam.clip(1800); // operator keeps a training segment
    let recorded = cam.clip(2400); // ... and the footage to search later
    write_clip(&path, &recorded, fps).expect("write clip");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "recorded {} frames to {} ({:.1} MiB)",
        recorded.len(),
        path.display(),
        bytes as f64 / (1024.0 * 1024.0)
    );
    drop(recorded); // the search below must not rely on in-memory frames

    // 2. Train the stream's cascade (once per camera, §4.1).
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut bank = FilterBank::build(
        &train_clip,
        ObjectClass::Car,
        &BankOptions::default(),
        &mut rng,
    );

    // 3. Search: stream the file, filter each frame, collect event scenes
    //    with >= 2 cars (a congestion query).
    let cfg = FfsVaConfig::default().with_number_of_objects(2);
    let th = StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(cfg.filter_degree),
        number_of_objects: cfg.number_of_objects,
    };
    let reader = ClipReader::open(&path).expect("open clip");
    let mut hits = 0usize;
    let mut scanned = 0usize;
    let mut events: Vec<(u64, u64)> = Vec::new(); // (start_pts, end_pts)
    for item in reader {
        let lf = item.expect("read frame");
        scanned += 1;
        let tr = bank.trace_frame(&lf);
        if cascade_pass(&tr, &th) {
            hits += 1;
            match events.last_mut() {
                // extend the current event if within 2 s of its end
                Some((_, end)) if lf.frame.pts_ms <= *end + 2000 => *end = lf.frame.pts_ms,
                _ => events.push((lf.frame.pts_ms, lf.frame.pts_ms)),
            }
        }
    }
    println!(
        "scanned {} frames from disk; {} matched the query (>= 2 cars)",
        scanned, hits
    );
    println!("found {} candidate congestion events:", events.len());
    for (i, (start, end)) in events.iter().enumerate() {
        println!(
            "  event {}: {:.1}s - {:.1}s ({:.1}s long)",
            i + 1,
            *start as f64 / 1000.0,
            *end as f64 / 1000.0,
            (*end - *start) as f64 / 1000.0
        );
    }
    println!("\nonly these frames would be handed to the full-feature model for precise review.");
    let _ = std::fs::remove_file(&path);
}
