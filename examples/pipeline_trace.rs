//! Watch the pipeline breathe: run the discrete-event engine with per-frame
//! tracing and render stage-activity lanes in the terminal — the Fig. 2
//! cascade as a live occupancy chart.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use ffs_va::core::{render_latency_breakdown, render_stage_activity, PrepareOptions};
use ffs_va::models::bank::BankOptions;
use ffs_va::models::snm::SnmTrainOptions;
use ffs_va::prelude::*;

fn main() {
    // Prepare two small streams (bursty cars at 30 % TOR).
    let opts = PrepareOptions {
        train_frames: 1200,
        eval_frames: 1800,
        bank: BankOptions {
            snm: SnmTrainOptions {
                epochs: 10,
                batch_size: 16,
                lr: 0.08,
                train_frac: 0.7,
                max_samples: 300,
                restarts: 2,
            },
            ..Default::default()
        },
        ..Default::default()
    };
    println!("preparing 2 streams ...");
    let cfg = FfsVaConfig::default();
    let inputs: Vec<StreamInput> = (0..2u64)
        .map(|i| {
            ffs_va::core::prepare_stream(
                workloads::test_tiny(ObjectClass::Car, 0.3, 900 + i),
                &opts,
            )
            .input(&cfg)
        })
        .collect();

    // Online run with tracing.
    let (r, timelines) = Engine::new(cfg, Mode::Online, inputs)
        .with_tracing()
        .run_traced();
    println!(
        "\nonline run: {} frames, {:.1} FPS, realtime: {}\n",
        r.total_frames,
        r.throughput_fps,
        r.realtime(cfg.online_fps)
    );
    print!("{}", render_stage_activity(&timelines, 72));
    println!();
    print!("{}", render_latency_breakdown(&timelines));
    println!("\ndarker = more frames completing that stage in the bucket.");
    println!("SDD stays uniformly busy (every frame), the lower lanes light up only when scenes pass — the cascade at work.");
}
