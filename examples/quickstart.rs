//! Quickstart: build a cascade for one synthetic camera and watch it filter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ffs_va::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // A small synthetic surveillance camera: cars pass through ~30 % of the
    // time (TOR 0.3), fixed viewpoint, mild sensor noise.
    let cfg = workloads::test_tiny(ObjectClass::Car, 0.3, 42);
    let mut camera = VideoStream::new(0, cfg);

    // §4.1: label a training clip (the reference model stands in for
    // YOLOv2's auto-labeling), then train + calibrate the cascade.
    println!("training the stream-specialized cascade ...");
    let training = camera.clip(1500);
    let mut bank = FilterBank::build(
        &training,
        ObjectClass::Car,
        &BankOptions::default(),
        &mut rng,
    );
    println!(
        "  SDD δ_diff = {:.2e}   SNM band = [{:.3}, {:.3}]   SNM test accuracy = {:.3}",
        bank.sdd.delta_diff, bank.snm.c_low, bank.snm.c_high, bank.snm_report.test_accuracy
    );

    // Filter 600 fresh frames from the same camera.
    let clip = camera.clip(600);
    let sys = FfsVaConfig::default();
    let t_pre = bank.snm.t_pre(sys.filter_degree);
    let mut survived = 0;
    let mut dropped = [0usize; 3];
    for lf in &clip {
        let tr = bank.trace_frame(lf);
        if !tr.sdd_pass(bank.sdd.delta_diff) {
            dropped[0] += 1;
        } else if !tr.snm_pass(t_pre) {
            dropped[1] += 1;
        } else if !tr.tyolo_pass(sys.number_of_objects) {
            dropped[2] += 1;
        } else {
            survived += 1;
        }
    }
    let targets = clip
        .iter()
        .filter(|lf| lf.truth.has(ObjectClass::Car))
        .count();
    println!(
        "\nfiltered {} frames ({} contain cars):",
        clip.len(),
        targets
    );
    println!("  dropped by SDD (background)      : {}", dropped[0]);
    println!("  dropped by SNM (no target)       : {}", dropped[1]);
    println!("  dropped by T-YOLO (< N objects)  : {}", dropped[2]);
    println!("  forwarded to the reference model : {}", survived);
    println!(
        "\nthe expensive full-feature model sees only {:.1}% of the video.",
        100.0 * survived as f64 / clip.len() as f64
    );
}
