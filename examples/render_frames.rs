//! Render a few generated frames to netpbm images (PGM for grayscale, PPM
//! for color) so you can *see* the synthetic workload: the street scene,
//! cars with window bands and wheels, crowds, ambient shadows.
//!
//! ```text
//! cargo run --release --example render_frames
//! # then open the files under ./rendered_frames/
//! ```

use ffs_va::prelude::*;
use ffs_va::video::write_pgm;

fn main() {
    let dir = std::path::Path::new("rendered_frames");
    std::fs::create_dir_all(dir).expect("output dir");

    // A grayscale street camera and a color one.
    for (label, color) in [("gray", false), ("color", true)] {
        let mut cfg = workloads::jackson().with_tor(0.6);
        cfg.color = color;
        let mut cam = VideoStream::new(0, cfg);
        let clip = cam.clip(600);
        // pick a busy frame and an empty one
        let busy = clip
            .iter()
            .max_by_key(|lf| lf.truth.count(ObjectClass::Car))
            .expect("frames");
        let empty = clip
            .iter()
            .find(|lf| lf.truth.objects.is_empty())
            .expect("background frame");
        let ext = if color { "ppm" } else { "pgm" };
        let busy_path = dir.join(format!("jackson_{}_busy.{}", label, ext));
        let empty_path = dir.join(format!("jackson_{}_background.{}", label, ext));
        write_pgm(&busy.frame, &busy_path).expect("write busy");
        write_pgm(&empty.frame, &empty_path).expect("write background");
        println!(
            "{} -> {} cars at seq {}",
            busy_path.display(),
            busy.truth.count(ObjectClass::Car),
            busy.frame.seq
        );
        println!("{} -> background", empty_path.display());
    }

    // A dense coral crowd.
    let mut cam = VideoStream::new(1, workloads::coral());
    let clip = cam.clip(800);
    let crowd = clip
        .iter()
        .max_by_key(|lf| lf.truth.count(ObjectClass::Person))
        .expect("frames");
    let p = dir.join("coral_crowd.pgm");
    write_pgm(&crowd.frame, &p).expect("write crowd");
    println!(
        "{} -> {} persons at seq {}",
        p.display(),
        crowd.truth.count(ObjectClass::Person),
        crowd.frame.seq
    );
}
