//! Scene switch — the §5.5 limitation, demonstrated: the SDD and SNM are
//! specialized to one camera's fixed viewpoint. When the camera is moved
//! (new scene), the old models stop working and the stream must be
//! retrained on footage from the new viewpoint (the paper: "a new network
//! model needs to be trained according to the new scene").
//!
//! ```text
//! cargo run --release --example scene_switch
//! ```

use ffs_va::core::{evaluate_accuracy, FfsVaConfig, StreamThresholds};
use ffs_va::prelude::*;
use rand::SeedableRng;

fn thresholds(bank: &FilterBank, cfg: &FfsVaConfig) -> StreamThresholds {
    StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(cfg.filter_degree),
        number_of_objects: cfg.number_of_objects,
    }
}

fn evaluate_on(bank: &mut FilterBank, clip: &[LabeledFrame], cfg: &FfsVaConfig) -> (f64, f64) {
    let traces = bank.trace_clip(clip);
    let rep = evaluate_accuracy(&traces, &thresholds(bank, cfg));
    (rep.error_rate, rep.scene_miss_rate)
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let cfg = FfsVaConfig::default();

    // Camera A: the original viewpoint.
    let mut vcfg_a = workloads::jackson().with_tor(0.3);
    vcfg_a.render_width = 150;
    vcfg_a.render_height = 100;
    let mut cam_a = VideoStream::new(0, vcfg_a.clone());
    println!("training on camera A's viewpoint ...");
    let train_a = cam_a.clip(1800);
    let mut bank_a = FilterBank::build(
        &train_a,
        ObjectClass::Car,
        &BankOptions::default(),
        &mut rng,
    );

    let eval_a = cam_a.clip(1000);
    let (err_a, miss_a) = evaluate_on(&mut bank_a, &eval_a, &cfg);
    println!(
        "  on its own scene:        frame error {:.1}%, scene miss {:.1}%",
        err_a * 100.0,
        miss_a * 100.0
    );

    // The camera is relocated: same target, entirely different scene.
    let vcfg_b = vcfg_a.with_seed(0xB0B0_CAFE);
    let mut cam_b = VideoStream::new(1, vcfg_b);
    let eval_b = cam_b.clip(1000);
    let (err_b, miss_b) = evaluate_on(&mut bank_a, &eval_b, &cfg);
    println!(
        "  after the camera moved:  frame error {:.1}%, scene miss {:.1}%  <- stale models",
        err_b * 100.0,
        miss_b * 100.0
    );

    // §5.5 remedy: retrain on footage from the new viewpoint.
    println!("retraining on the new viewpoint ...");
    let train_b = cam_b.clip(1800);
    let mut bank_b = FilterBank::build(
        &train_b,
        ObjectClass::Car,
        &BankOptions::default(),
        &mut rng,
    );
    let eval_b2 = cam_b.clip(1000);
    let (err_b2, miss_b2) = evaluate_on(&mut bank_b, &eval_b2, &cfg);
    println!(
        "  retrained models:        frame error {:.1}%, scene miss {:.1}%",
        err_b2 * 100.0,
        miss_b2 * 100.0
    );
    println!("\nspecialization is real: stale models degrade badly on a new scene and retraining restores accuracy (§5.5).");
}
