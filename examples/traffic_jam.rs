//! Traffic-jam detection — the paper's motivating use case (§2.3): "at a
//! crossroad, more cars detected than usual means a traffic jam". The target
//! event is *NumberofObjects ≥ 2* cars, and the cascade runs as a real
//! threaded pipeline (every filter on its own thread, blocking feedback
//! queues), with scene-level accuracy against the reference model.
//!
//! ```text
//! cargo run --release --example traffic_jam
//! ```

use ffs_va::core::evaluate_accuracy;
use ffs_va::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    // A jackson-style crossroad camera, busier than usual (TOR 0.35) so
    // multi-car congestion scenes actually occur, at a small render size so
    // the example finishes quickly.
    let mut cfg = workloads::jackson().with_tor(0.35);
    cfg.render_width = 150;
    cfg.render_height = 100;
    cfg.objects_per_scene = (1, 3);
    let mut camera = VideoStream::new(0, cfg);

    println!("training the crossroad cascade ...");
    let training = camera.clip(1800);
    let bank = FilterBank::build(
        &training,
        ObjectClass::Car,
        &BankOptions::default(),
        &mut rng,
    );

    // Congestion = at least 2 cars on camera.
    let sys = FfsVaConfig::default().with_number_of_objects(2);

    // Run 900 fresh frames through the *threaded* pipeline (SDD, SNM,
    // T-YOLO, reference each on their own thread, feedback queues between).
    let clip = camera.clip(900);
    let mut bank_for_traces = FilterBank::build(
        &training,
        ObjectClass::Car,
        &BankOptions::default(),
        &mut rng,
    );
    let traces = bank_for_traces.trace_clip(&clip);
    let result = run_pipeline_rt(clip, bank, &sys);

    println!(
        "\npipeline processed {} frames in {:.2}s ({:.0} FPS wall)",
        result.total_frames, result.wall_time_s, result.throughput_fps
    );
    println!(
        "stage loads: SDD {} -> SNM {} -> T-YOLO {} -> reference {}",
        result.stage_processed[0],
        result.stage_processed[1],
        result.stage_processed[2],
        result.stage_processed[3]
    );
    println!("congestion alarms raised: {}", result.survivors.len());
    if let Some(first) = result.survivors.first() {
        println!(
            "first alarm at frame {} (t = {:.1}s), {} cars confirmed by the reference model",
            first.seq,
            first.pts_ms as f64 / 1000.0,
            first.reference_count
        );
    }

    // Scene-level accuracy vs running YOLOv2 on every frame.
    let rep = evaluate_accuracy(&traces, &bank_for_traces_thresholds(&bank_for_traces, &sys));
    println!(
        "\naccuracy vs full-frame YOLOv2: {} of {} congestion scenes detected (miss rate {:.1}%)",
        rep.significant_scenes_detected,
        rep.significant_scenes,
        rep.scene_miss_rate * 100.0
    );
}

fn bank_for_traces_thresholds(
    bank: &FilterBank,
    sys: &FfsVaConfig,
) -> ffs_va::core::StreamThresholds {
    ffs_va::core::StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(sys.filter_degree),
        number_of_objects: sys.number_of_objects,
    }
}
