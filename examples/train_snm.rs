//! The §4.1 training pipeline, step by step: auto-label a clip with the
//! reference model, train the stream-specialized network model (SNM) with
//! SGD, select the `c_low`/`c_high` thresholds on the held-out split, and
//! persist the trained model as JSON.
//!
//! ```text
//! cargo run --release --example train_snm
//! ```

use ffs_va::models::snm::{train_snm, SnmTrainOptions};
use ffs_va::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let cfg = workloads::test_tiny(ObjectClass::Car, 0.4, 5);
    let mut camera = VideoStream::new(0, cfg);

    // 1. Auto-label a training clip (ground truth stands in for YOLOv2).
    let clip = camera.clip(2500);
    let positives = clip
        .iter()
        .filter(|lf| lf.truth.has(ObjectClass::Car))
        .count();
    println!(
        "labeled {} frames: {} positive, {} negative",
        clip.len(),
        positives,
        clip.len() - positives
    );

    // 2. Train the 3-layer CNN.
    let opts = SnmTrainOptions::default();
    println!(
        "training SNM ({} epochs, batch {}, lr {}, {} restarts) ...",
        opts.epochs, opts.batch_size, opts.lr, opts.restarts
    );
    let (mut model, report) = train_snm(&clip, ObjectClass::Car, &opts, &mut rng);
    println!("per-epoch loss: {:?}", report.losses);
    println!(
        "held-out accuracy {:.3} on {} pos / {} neg samples",
        report.test_accuracy, report.positives, report.negatives
    );

    // 3. Threshold selection (Eq. 2 inputs).
    println!(
        "thresholds: c_low = {:.3}, c_high = {:.3}",
        report.c_low, report.c_high
    );
    for fd in [0.0f32, 0.5, 1.0] {
        println!("  FilterDegree {:.1} -> t_pre {:.3}", fd, model.t_pre(fd));
    }

    // 4. Persist and reload the model; predictions must be identical.
    let json = serde_json::to_string(&model).expect("serialize model");
    println!("serialized model: {} bytes of JSON", json.len());
    let mut restored: SnmModel = serde_json::from_str(&json).expect("deserialize model");
    let probe = camera.clip(5);
    for lf in &probe {
        let a = model.predict(&lf.frame);
        let b = restored.predict(&lf.frame);
        assert!((a - b).abs() < 1e-6, "round-trip mismatch");
    }
    println!("round-trip verified: restored model predicts identically.");
}
