#!/usr/bin/env python3
"""CI performance-regression gate over `ffsva bench` output.

Compares a fresh BENCH.json against the committed baseline
(results/BENCH_BASELINE.json) and fails the build when the pipeline got
slower or its filtering behavior drifted:

* any FPS metric (throughput or per-stage) regressing more than
  --fps-tolerance (default 15%) relative to the baseline fails;
* any drop-rate metric moving more than --drop-tolerance (default 2
  percentage points) in either direction fails — drop rates are
  deterministic per seed, so a shift means the cascade's decisions changed,
  not that the runner was slow.

Latency and queue-depth metrics are reported but not gated: they are
wall-clock- and scheduler-noisy in the RT leg, and the DES leg's are
implied by the gated FPS numbers.

A baseline with a top-level `"provisional": true` marks numbers that were
not produced on the CI runner class (e.g. authored before the gate first
ran there). The comparison still prints and a loud warning is emitted, but
the gate passes so the first CI run can bless a real baseline via
scripts/update-baseline.sh (or the bless-baseline workflow).

`--require SERIES` (repeatable) pins a dotted metric path that must exist
as a numeric leaf in the CURRENT report — use it for newly added series
(e.g. ingest/checkpoint telemetry) so a refactor cannot silently stop
emitting them. Missing required series fail the gate even when the
baseline is provisional, since they describe the current run, not a delta.

`--self-test` runs the gate's own logic against synthetic in-memory
reports (no pytest, no files) and exits 0 only if every regression,
missing-series and provisional path behaves as documented. CI runs it
before the real comparison so a broken gate can never wave a regression
through.

Usage: bench_gate.py BASELINE CURRENT [--fps-tolerance F] [--drop-tolerance F]
                     [--require SERIES]...
       bench_gate.py --self-test
Exit codes: 0 pass, 1 regression/missing series/self-test failure,
            2 bad invocation/input.
"""

import argparse
import json
import sys


def flatten(node, prefix=""):
    """Flatten nested dicts to {dotted.path: leaf}; lists are indexed."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(flatten(value, f"{prefix}{key}." if prefix or key else key))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(flatten(value, f"{prefix}{i}."))
    else:
        out[prefix.rstrip(".")] = node
    return out


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_gate: cannot load {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def is_fps_metric(path):
    return "fps" in path.split(".")[-1]


def is_drop_metric(path):
    return "drop_rate" in path


def gate(baseline_doc, current_doc, baseline_name, current_name,
         fps_tolerance, drop_tolerance, require, quiet=False):
    """Run the comparison; returns the process exit code (0 pass, 1 fail)."""
    def say(*a, **kw):
        if not quiet:
            print(*a, **kw)

    provisional = bool(baseline_doc.get("provisional", False))
    if provisional:
        # Loud on purpose: a provisional baseline means the gate is NOT
        # protecting this build, and that state should be impossible to miss
        # in the CI log.
        say("=" * 72, file=sys.stderr)
        say("bench_gate: WARNING: baseline is PROVISIONAL — regressions are",
            file=sys.stderr)
        say("bench_gate: reported but NOT enforced. Bless a real baseline with",
            file=sys.stderr)
        say("bench_gate: scripts/update-baseline.sh (or the bless-baseline "
            "workflow).", file=sys.stderr)
        say("=" * 72, file=sys.stderr)

    baseline = flatten(baseline_doc)
    current = flatten(current_doc)

    failures = []
    rows = []
    for path in sorted(baseline):
        base = baseline[path]
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            continue
        cur = current.get(path)
        if not isinstance(cur, (int, float)) or isinstance(cur, bool):
            if is_fps_metric(path) or is_drop_metric(path):
                failures.append(
                    f"{path}: gated series is in the baseline but missing from "
                    f"{current_name} — the current run no longer emits it "
                    "(renamed or dropped series fail the gate; if the removal "
                    "is intentional, re-bless via scripts/update-baseline.sh)"
                )
            continue

        verdict = ""
        if is_fps_metric(path):
            floor = base * (1.0 - fps_tolerance)
            if cur < floor:
                verdict = "FAIL"
                failures.append(
                    f"{path}: {cur:.2f} FPS is below {floor:.2f} "
                    f"(baseline {base:.2f}, tolerance {fps_tolerance:.0%})"
                )
            else:
                verdict = "ok"
        elif is_drop_metric(path):
            delta = abs(cur - base)
            if delta > drop_tolerance:
                verdict = "FAIL"
                failures.append(
                    f"{path}: drop rate moved {delta * 100:.2f}pp "
                    f"(baseline {base:.4f} -> {cur:.4f}, tolerance "
                    f"{drop_tolerance * 100:.0f}pp)"
                )
            else:
                verdict = "ok"
        rows.append((path, base, cur, verdict))

    missing_required = []
    for path in require:
        value = current.get(path)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            missing_required.append(
                f"required series `{path}` is missing from {current_name} — "
                "the run no longer emits it (or its name changed); every "
                "--require series must appear as a numeric leaf in the report"
            )
        base_value = baseline.get(path)
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
            # A baseline-side miss is just as hard a failure as a
            # current-side one: the gate cannot compare what the committed
            # baseline never recorded, provisional or not.
            missing_required.append(
                f"required series `{path}` is missing from {baseline_name} — "
                "the committed baseline predates it; re-bless via "
                "scripts/update-baseline.sh to start gating it"
            )
    failures.extend(missing_required)

    width = max((len(p) for p, *_ in rows), default=10)
    say(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  gate")
    say("-" * (width + 36))
    for path, base, cur, verdict in rows:
        say(f"{path:<{width}}  {base:>12.3f}  {cur:>12.3f}  {verdict}")

    if failures:
        say()
        for failure in failures:
            say(f"bench_gate: {failure}", file=sys.stderr)
        if provisional and not missing_required:
            say(
                "bench_gate: baseline is marked provisional — passing despite the "
                "deltas above; bless a real baseline with scripts/update-baseline.sh",
            )
            return 0
        say(
            f"bench_gate: {len(failures)} regression(s) vs {baseline_name}; "
            "if intentional, re-bless via scripts/update-baseline.sh",
            file=sys.stderr,
        )
        return 1

    notice = " (baseline provisional)" if provisional else ""
    say(f"\nbench_gate: all gated metrics within tolerance{notice}")
    return 0


def self_test():
    """Exercise every gate path on synthetic reports; 0 iff all behave."""
    base = {
        "kernel": {"matmul_gflops": 8.0},
        "stage": {"snm": {"batch_fps": 1000.0, "int8_fps": 2000.0}},
        "des": {"digest": {"drop_rate": 0.50}},
    }

    def variant(doc, **overrides):
        out = json.loads(json.dumps(doc))
        flat = overrides.items()
        for dotted, value in flat:
            node = out
            *parents, leaf = dotted.split(".")
            for key in parents:
                node = node.setdefault(key, {})
            node[leaf] = value
        return out

    cases = [
        ("identical reports pass",
         base, base, [], 0),
        ("fps within tolerance passes",
         base, variant(base, **{"stage.snm.batch_fps": 900.0}), [], 0),
        ("fps regression fails",
         base, variant(base, **{"stage.snm.batch_fps": 500.0}), [], 1),
        ("drop-rate shift fails in either direction",
         base, variant(base, **{"des.digest.drop_rate": 0.55}), [], 1),
        ("gated series vanishing from current fails",
         base, {"kernel": {"matmul_gflops": 8.0}}, [], 1),
        ("required series present passes",
         base, base, ["stage.snm.int8_fps"], 0),
        ("required series missing from current fails",
         base, variant(base, **{"stage.snm.int8_fps": "gone"}),
         ["stage.snm.int8_fps"], 1),
        ("required series missing from baseline fails",
         variant(base, **{"stage.snm.int8_fps": None}), base,
         ["stage.snm.int8_fps"], 1),
        ("provisional baseline passes despite regression",
         variant(base, provisional=True),
         variant(base, **{"stage.snm.batch_fps": 500.0}), [], 0),
        ("provisional baseline still fails on missing required series",
         variant(base, provisional=True),
         variant(base, **{"stage.snm.int8_fps": "gone"}),
         ["stage.snm.int8_fps"], 1),
        ("provisional baseline still fails when baseline lacks required series",
         variant(base, provisional=True, **{"stage.snm.int8_fps": None}),
         base, ["stage.snm.int8_fps"], 1),
        ("non-numeric leaves are ignored, not compared",
         variant(base, workload="test"), variant(base, workload="other"),
         [], 0),
    ]

    failed = 0
    for name, b, c, require, want in cases:
        got = gate(b, c, "<baseline>", "<current>",
                   fps_tolerance=0.15, drop_tolerance=0.02,
                   require=require, quiet=True)
        status = "PASS" if got == want else "FAIL"
        if got != want:
            failed += 1
        print(f"self-test {status}: {name} (exit {got}, want {want})")
    if failed:
        print(f"bench_gate: self-test FAILED ({failed}/{len(cases)} cases)",
              file=sys.stderr)
        return 1
    print(f"bench_gate: self-test passed ({len(cases)} cases)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="committed BENCH_BASELINE.json")
    parser.add_argument("current", nargs="?", help="freshly produced BENCH.json")
    parser.add_argument("--fps-tolerance", type=float, default=0.15,
                        help="max relative FPS regression (default 0.15)")
    parser.add_argument("--drop-tolerance", type=float, default=0.02,
                        help="max absolute drop-rate change (default 0.02)")
    parser.add_argument("--require", action="append", default=[], metavar="SERIES",
                        help="dotted metric path that must be a numeric leaf in "
                             "CURRENT (repeatable); missing series fail the gate "
                             "even against a provisional baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's built-in conformance cases and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("BASELINE and CURRENT are required unless --self-test")

    return gate(load(args.baseline), load(args.current),
                args.baseline, args.current,
                args.fps_tolerance, args.drop_tolerance, args.require)


if __name__ == "__main__":
    sys.exit(main())
