#!/usr/bin/env python3
"""CI performance-regression gate over `ffsva bench` output.

Compares a fresh BENCH.json against the committed baseline
(results/BENCH_BASELINE.json) and fails the build when the pipeline got
slower or its filtering behavior drifted:

* any FPS metric (throughput or per-stage) regressing more than
  --fps-tolerance (default 15%) relative to the baseline fails;
* any drop-rate metric moving more than --drop-tolerance (default 2
  percentage points) in either direction fails — drop rates are
  deterministic per seed, so a shift means the cascade's decisions changed,
  not that the runner was slow.

Latency and queue-depth metrics are reported but not gated: they are
wall-clock- and scheduler-noisy in the RT leg, and the DES leg's are
implied by the gated FPS numbers.

A baseline with a top-level `"provisional": true` marks numbers that were
not produced on the CI runner class (e.g. authored before the gate first
ran there). The comparison still prints, but the gate passes with a notice
so the first CI run can bless a real baseline via
scripts/update-baseline.sh.

`--require SERIES` (repeatable) pins a dotted metric path that must exist
as a numeric leaf in the CURRENT report — use it for newly added series
(e.g. ingest/checkpoint telemetry) so a refactor cannot silently stop
emitting them. Missing required series fail the gate even when the
baseline is provisional, since they describe the current run, not a delta.

Usage: bench_gate.py BASELINE CURRENT [--fps-tolerance F] [--drop-tolerance F]
                     [--require SERIES]...
Exit codes: 0 pass, 1 regression/missing series, 2 bad invocation/input.
"""

import argparse
import json
import sys


def flatten(node, prefix=""):
    """Flatten nested dicts to {dotted.path: leaf}; lists are indexed."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(flatten(value, f"{prefix}{key}." if prefix or key else key))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(flatten(value, f"{prefix}{i}."))
    else:
        out[prefix.rstrip(".")] = node
    return out


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_gate: cannot load {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def is_fps_metric(path):
    return "fps" in path.split(".")[-1]


def is_drop_metric(path):
    return "drop_rate" in path


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_BASELINE.json")
    parser.add_argument("current", help="freshly produced BENCH.json")
    parser.add_argument("--fps-tolerance", type=float, default=0.15,
                        help="max relative FPS regression (default 0.15)")
    parser.add_argument("--drop-tolerance", type=float, default=0.02,
                        help="max absolute drop-rate change (default 0.02)")
    parser.add_argument("--require", action="append", default=[], metavar="SERIES",
                        help="dotted metric path that must be a numeric leaf in "
                             "CURRENT (repeatable); missing series fail the gate "
                             "even against a provisional baseline")
    args = parser.parse_args()

    baseline_doc = load(args.baseline)
    current_doc = load(args.current)
    provisional = bool(baseline_doc.get("provisional", False))

    baseline = flatten(baseline_doc)
    current = flatten(current_doc)

    failures = []
    rows = []
    for path in sorted(baseline):
        base = baseline[path]
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            continue
        cur = current.get(path)
        if not isinstance(cur, (int, float)) or isinstance(cur, bool):
            if is_fps_metric(path) or is_drop_metric(path):
                failures.append(
                    f"{path}: gated series is in the baseline but missing from "
                    f"{args.current} — the current run no longer emits it "
                    "(renamed or dropped series fail the gate; if the removal "
                    "is intentional, re-bless via scripts/update-baseline.sh)"
                )
            continue

        verdict = ""
        if is_fps_metric(path):
            floor = base * (1.0 - args.fps_tolerance)
            if cur < floor:
                verdict = "FAIL"
                failures.append(
                    f"{path}: {cur:.2f} FPS is below {floor:.2f} "
                    f"(baseline {base:.2f}, tolerance {args.fps_tolerance:.0%})"
                )
            else:
                verdict = "ok"
        elif is_drop_metric(path):
            delta = abs(cur - base)
            if delta > args.drop_tolerance:
                verdict = "FAIL"
                failures.append(
                    f"{path}: drop rate moved {delta * 100:.2f}pp "
                    f"(baseline {base:.4f} -> {cur:.4f}, tolerance "
                    f"{args.drop_tolerance * 100:.0f}pp)"
                )
            else:
                verdict = "ok"
        rows.append((path, base, cur, verdict))

    missing_required = []
    for path in args.require:
        value = current.get(path)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            missing_required.append(
                f"required series `{path}` is missing from {args.current} — "
                "the run no longer emits it (or its name changed); every "
                "--require series must appear as a numeric leaf in the report"
            )
        base_value = baseline.get(path)
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
            failures.append(
                f"required series `{path}` is missing from {args.baseline} — "
                "the committed baseline predates it; re-bless via "
                "scripts/update-baseline.sh to start gating it"
            )
    failures.extend(missing_required)

    width = max((len(p) for p, *_ in rows), default=10)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  gate")
    print("-" * (width + 36))
    for path, base, cur, verdict in rows:
        print(f"{path:<{width}}  {base:>12.3f}  {cur:>12.3f}  {verdict}")

    if failures:
        print()
        for failure in failures:
            print(f"bench_gate: {failure}", file=sys.stderr)
        if provisional and not missing_required:
            print(
                "bench_gate: baseline is marked provisional — passing despite the "
                "deltas above; bless a real baseline with scripts/update-baseline.sh",
            )
            return 0
        print(
            f"bench_gate: {len(failures)} regression(s) vs {args.baseline}; "
            "if intentional, re-bless via scripts/update-baseline.sh",
            file=sys.stderr,
        )
        return 1

    notice = " (baseline provisional)" if provisional else ""
    print(f"\nbench_gate: all gated metrics within tolerance{notice}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
