#!/usr/bin/env bash
# Bless the current machine's bench numbers as the committed CI baseline.
#
# Run this on the CI runner class (or a machine of comparable speed) after an
# intentional performance change, then commit the result:
#
#   ./scripts/update-baseline.sh
#   git add results/BENCH_BASELINE.json && git commit -m "Bless new bench baseline"
#
# The freshly blessed file drops the `provisional` marker, so the bench-gate
# job enforces tolerances against it from the next run on.
#
# Cargo features for the build come from $FEATURES (e.g. FEATURES=simd to
# bless the dispatched-kernel numbers the CI bench-gate measures); all
# positional arguments are forwarded to `ffsva bench` itself.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin ffsva ${FEATURES:+--features "$FEATURES"}
./target/release/ffsva bench --out results/BENCH_BASELINE.json "$@"

python3 - <<'EOF'
import json

path = "results/BENCH_BASELINE.json"
with open(path, encoding="utf-8") as fh:
    doc = json.load(fh)
doc.pop("provisional", None)
doc.pop("provisional_note", None)
with open(path, "w", encoding="utf-8") as fh:
    json.dump(doc, fh, indent=2, sort_keys=False)
    fh.write("\n")
print(f"blessed {path} (workload '{doc.get('workload')}', seed {doc.get('seed')})")
EOF
