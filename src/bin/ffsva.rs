//! `ffsva` — operator CLI for the FFS-VA cascade.
//!
//! Subcommands mirror an operator's workflow around a deployment:
//!
//! * `record`   — generate a synthetic surveillance clip into an FFSV1 file.
//! * `train`    — train/calibrate a per-stream cascade from a clip (§4.1)
//!                and save the profile as JSON.
//! * `analyze`  — post-facto search: run the cascade over a clip and report
//!                the surviving frames grouped into events.
//! * `simulate` — what-if runs on the discrete-event engine (throughput,
//!                latency, device utilization for N streams).
//! * `capacity` — find how many live streams one instance sustains vs. the
//!                YOLOv2 baseline (§4.3.1 / Fig. 6).
//! * `bench`    — run the headline workload on both engines and write
//!                `BENCH.json` (the CI performance-regression gate input).
//! * `tune`     — cost-based cascade auto-tuning: search the knob space
//!                against a calibration clip, rank feasible points by
//!                DES-predicted FPS, and emit a blessable config
//!                (`TUNE.json`); `--drift-ablation` adds the online
//!                recalibration before/after leg.
//! * `serve`    — resident daemon: the cluster control plane behind an
//!                HTTP/1.1 ops API, with SIGTERM-triggered graceful drain
//!                and crash-safe `--resume`.

use ffs_va::core::accuracy::cascade_pass;
use ffs_va::core::report::digest_table;
use ffs_va::core::{
    drift_ablation, evaluate_accuracy, find_max_cluster_streams, find_max_online_streams,
    install_signal_drain, max_streams_by_threads, threads_for_streams, tune, AccuracyReport,
    Daemon, DriftConfig, ServeConfig, TuneCandidate, TuneInput, TuneOptions, DEFAULT_THREAD_BUDGET,
};
use ffs_va::models::reference::ReferenceModel;
use ffs_va::models::sdd::SddFilter;
use ffs_va::models::snm::{SnmReport, SnmTrainOptions};
use ffs_va::models::tyolo::TinyYolo;
use ffs_va::models::{fit_batch_curve, fit_batch_curve_checked, CostSpec, Scratch};
use ffs_va::prelude::*;
use ffs_va::video::storage::{write_clip, ClipReader};
use ffs_va::video::BackgroundKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

const USAGE: &str = "\
ffsva — operator CLI for the FFS-VA filtering cascade

USAGE:
  ffsva record   --workload <jackson|coral|lobby|test> --out <clip.ffsv>
                 [--frames N] [--tor F] [--seed N] [--target <class>]
  ffsva train    --clip <clip.ffsv> --target <class> --out <profile.json>
                 [--train-frames N] [--seed N] [--fast]
  ffsva analyze  --clip <clip.ffsv> --target <class> [--number N]
                 [--filter-degree F] [--profile <profile.json>]
                 [--train-frames N] [--seed N] [--fast] [--report <out.json>]
                 [--telemetry <out.json>]
  ffsva simulate --workload <name> --streams N [--frames N] [--train-frames N]
                 [--mode online|offline] [--batch <static|feedback|dynamic>[:SIZE]]
                 [--filter-gpus N] [--ref-gpus N] [--filter-degree F]
                 [--number N] [--tor F] [--seed N] [--target <class>]
                 [--fast] [--baseline] [--json <out.json>]
                 [--fault-plan <spec>] [--telemetry <out.json>]
                 [--source-faults <spec>] [--checkpoint-dir <dir>] [--resume]
                 [--stop-after N] [--snm-precision f32|int8]
                 [--tyolo-precision f32|int8]
                 [--instances N] [--epoch-frames N]

Fault plans inject deterministic failures, keyed on frame seq, e.g.
  --fault-plan 'stream0.snm:panic@50,stream1.tyolo:stall@100+250ms'
(grammar: stream<S>.<sdd|snm|tyolo|ref>:panic@N|stall@N+DURms|failpush@N).

--instances N runs the cluster control plane: N resident engine instances
under telemetry-driven admission, with streams re-forwarded across
instances by riding their checkpoint files. Fault plans then also accept
instance scope, e.g.
  --fault-plan 'instance0:crash@150,instance1:slow@300+40ms'
(grammar: instance<I>:crash@N|slow@N+DURms, mixable with stream faults).
--epoch-frames sets the control-epoch granularity (default 150 frames).

Source-fault plans make the ingest links unreliable, e.g.
  --source-faults 'stream0.src:disconnect@50+500ms,stream1.src:drop@10..13'
(grammar: stream<S>.src:disconnect@N+DURms|corrupt@N|drop@N..M|reorder@N+K|dup@N).
--checkpoint-dir writes crash-safe per-stream snapshots; --resume continues
from them; --stop-after N truncates each stream's input to simulate a kill.
  ffsva capacity --workload <name> [--frames N] [--train-frames N]
                 [--filter-gpus N] [--ref-gpus N] [--max-streams N]
                 [--tor F] [--seed N] [--target <class>] [--fast]
                 [--pooled] [--pool-workers N] [--thread-budget N]
                 [--instances N]

--pooled adds the sharded stage-pool thread ceiling (DESIGN.md §11): how
many streams fit the thread budget with pooled SDD/SNM workers vs. one
thread per stream per stage. --instances N plans a whole fleet: the largest
stream count N instances sustain with re-forwarding allowed to spread load.
  ffsva bench    [--out <BENCH.json>] [--streams N] [--frames N]
                 [--train-frames N] [--tor F] [--seed N] [--full] [--fit-cost]
                 [--snm-precision f32|int8] [--tyolo-precision f32|int8]

  ffsva tune     [--out <TUNE.json>] [--bless <config.json>] [--streams N]
                 [--frames N] [--train-frames N] [--tor F] [--seed N] [--full]
                 [--miss-bound F] [--des-budget N] [--top N] [--n-obj N]
                 [--fit-cost] [--min-r2 F] [--drift-ablation]
                 [--drift-out <DRIFT.json>] [--drift-window N]
                 [--drift-ratio F]

tune searches the cascade knob space (δ_diff scale, FilterDegree, query
relaxation, BatchSize, num_tyolo, SNM precision) against a calibration
clip: every point is scored for scene-miss accuracy on the real decision
traces, feasible points (miss < --miss-bound, default 2%) are priced by
the DES, and the report ranks them by predicted aggregate FPS next to the
untuned baseline. The search is deterministic — same inputs, byte-identical
TUNE.json. --bless writes the winner as an engine config + per-stream
thresholds snippet. --fit-cost prices with the measured SNM batch curve
instead of the paper-calibrated costs, but only when the affine fit's r²
clears --min-r2 (default 0.9). --drift-ablation runs the same workload
with a day/night illumination cycle through the static pipeline and the
online-recalibrating one (windowed SDD-distance shift detector; SDD
reference rebuild + SNM threshold re-derivation on detection) and writes
the before/after scene-miss comparison to --drift-out.

  ffsva serve    --state-dir <dir> [--addr HOST:PORT] [--instances N]
                 [--epoch-frames N] [--epoch-interval-ms N]
                 [--fault-plan <spec>] [--source-faults <spec>] [--resume]

serve runs the cluster control plane as a resident daemon behind an
HTTP/1.1 ops API (POST/DELETE /streams, GET /healthz /readyz /telemetry,
GET /telemetry/stream, POST /drain). SIGTERM or POST /drain triggers a
graceful drain: the in-flight epoch completes, every live stream's
checkpoint and the session manifest land in --state-dir, and the process
exits 0; `serve --resume` continues bit-identically. The bound address is
written to <state-dir>/serve.addr (use --addr 127.0.0.1:0 to let the OS
pick). Fault plans (stage, instance, and source scope) drill the same
failure modes as simulate.

--snm-precision int8 runs SNM inference through the quantized int8 lowering
(DESIGN.md §12) in simulate/capacity traces and in both bench engine legs;
bench always reports the int8-vs-f32 scene-miss delta either way.
--tyolo-precision int8 routes the shared T-YOLO through its quantized
counting path the same way, independently of the SNM knob.

Object classes: car, bus, truck, person, dog, cat, bicycle.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("ffsva: {}", e);
            eprintln!();
            eprintln!("{}", USAGE);
            std::process::exit(2);
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), String> {
    if args.is_empty() {
        return Err("missing subcommand".into());
    }
    let cmd = args.remove(0);
    let mut args = Args(args);
    let result = match cmd.as_str() {
        "record" => cmd_record(&mut args),
        "train" => cmd_train(&mut args),
        "analyze" => cmd_analyze(&mut args),
        "simulate" => cmd_simulate(&mut args),
        "capacity" => cmd_capacity(&mut args),
        "bench" => cmd_bench(&mut args),
        "tune" => cmd_tune(&mut args),
        "serve" => cmd_serve(&mut args),
        "help" | "--help" | "-h" => {
            println!("{}", USAGE);
            return Ok(());
        }
        other => Err(format!("unknown subcommand '{}'", other)),
    };
    result?;
    args.finish()
}

// ---------------------------------------------------------------------------
// argument parsing

struct Args(Vec<String>);

impl Args {
    /// Take `--name value`, if present.
    fn opt(&mut self, name: &str) -> Result<Option<String>, String> {
        let flag = format!("--{}", name);
        match self.0.iter().position(|a| *a == flag) {
            None => Ok(None),
            Some(i) => {
                if i + 1 >= self.0.len() {
                    return Err(format!("--{} expects a value", name));
                }
                self.0.remove(i);
                Ok(Some(self.0.remove(i)))
            }
        }
    }

    /// Take a required `--name value`.
    fn req(&mut self, name: &str) -> Result<String, String> {
        self.opt(name)?
            .ok_or_else(|| format!("missing required option --{}", name))
    }

    /// Take a bare `--name` flag.
    fn flag(&mut self, name: &str) -> bool {
        let flag = format!("--{}", name);
        match self.0.iter().position(|a| *a == flag) {
            None => false,
            Some(i) => {
                self.0.remove(i);
                true
            }
        }
    }

    fn parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{}' for --{}", v, name)),
        }
    }

    /// Error out on anything not consumed by the subcommand.
    fn finish(self) -> Result<(), String> {
        self.ensure_empty()
    }

    /// Like [`Args::finish`], for subcommands that must reject leftovers
    /// *before* starting long-running work (the daemon).
    fn ensure_empty(&self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {}", self.0.join(" ")))
        }
    }
}

fn parse_target(s: &str) -> Result<ObjectClass, String> {
    ObjectClass::ALL
        .iter()
        .copied()
        .find(|c| c.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown object class '{}'", s))
}

fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "online" => Ok(Mode::Online),
        "offline" => Ok(Mode::Offline),
        other => Err(format!("invalid --mode '{}' (online|offline)", other)),
    }
}

fn parse_precision(s: &str) -> Result<Precision, String> {
    match s {
        "f32" => Ok(Precision::F32),
        "int8" => Ok(Precision::Int8),
        other => Err(format!("invalid precision '{}' (f32|int8)", other)),
    }
}

fn parse_batch(s: &str) -> Result<BatchPolicy, String> {
    let (kind, size) = match s.split_once(':') {
        Some((k, v)) => (
            k,
            v.parse::<usize>()
                .map_err(|_| format!("invalid batch size in '{}'", s))?,
        ),
        None => (s, 10),
    };
    match kind {
        "static" => Ok(BatchPolicy::Static { size }),
        "feedback" => Ok(BatchPolicy::Feedback { size }),
        "dynamic" => Ok(BatchPolicy::Dynamic { size }),
        other => Err(format!(
            "invalid batch policy '{}' (static|feedback|dynamic[:SIZE])",
            other
        )),
    }
}

/// Resolve a workload preset plus the common `--tor/--seed/--target` knobs.
fn workload_config(args: &mut Args) -> Result<StreamConfig, String> {
    let name = args.req("workload")?;
    let tor = match args.opt("tor")? {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("invalid --tor '{}'", v))?,
        ),
        None => None,
    };
    let seed = match args.opt("seed")? {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("invalid --seed '{}'", v))?,
        ),
        None => None,
    };
    let target = match args.opt("target")? {
        Some(v) => Some(parse_target(&v)?),
        None => None,
    };
    let mut cfg = match name.as_str() {
        "jackson" => workloads::jackson(),
        "coral" => workloads::coral(),
        "lobby" => workloads::lobby(),
        "test" | "tiny" => workloads::test_tiny(
            target.unwrap_or(ObjectClass::Car),
            tor.unwrap_or(0.3),
            seed.unwrap_or(42),
        ),
        other => {
            return Err(format!(
                "unknown workload '{}' (jackson|coral|lobby|test)",
                other
            ));
        }
    };
    if let Some(t) = tor {
        cfg.tor = t;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(t) = target {
        cfg.target = t;
    }
    Ok(cfg)
}

/// SNM training options: paper-quality by default, `--fast` for smoke runs.
fn bank_options(fast: bool) -> BankOptions {
    if fast {
        BankOptions {
            snm: SnmTrainOptions {
                epochs: 10,
                batch_size: 16,
                lr: 0.08,
                train_frac: 0.7,
                max_samples: 300,
                restarts: 2,
            },
            ..Default::default()
        }
    } else {
        BankOptions::default()
    }
}

// ---------------------------------------------------------------------------
// cascade profile (the `train` artifact)

/// A trained per-stream cascade, serializable as the `train` subcommand's
/// output. T-YOLO and the reference oracle carry no per-stream state, so the
/// profile stores only the SDD threshold model and the SNM network.
#[derive(Serialize, Deserialize)]
struct CascadeProfile {
    target: ObjectClass,
    sdd: SddFilter,
    snm: SnmModel,
    snm_report: SnmReport,
}

impl CascadeProfile {
    fn from_bank(bank: FilterBank) -> Self {
        CascadeProfile {
            target: bank.target,
            sdd: bank.sdd,
            snm: bank.snm,
            snm_report: bank.snm_report,
        }
    }

    fn into_bank(self) -> FilterBank {
        FilterBank {
            target: self.target,
            sdd: self.sdd,
            snm: self.snm,
            tyolo: TinyYolo::default(),
            reference: ReferenceModel::default(),
            snm_report: self.snm_report,
        }
    }

    fn load(path: &Path) -> Result<Self, String> {
        let bytes = std::fs::read(path)
            .map_err(|e| format!("cannot read profile {}: {}", path.display(), e))?;
        serde_json::from_slice(&bytes)
            .map_err(|e| format!("invalid profile {}: {}", path.display(), e))
    }

    fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| format!("serialize profile: {}", e))?;
        std::fs::write(path, json)
            .map_err(|e| format!("cannot write profile {}: {}", path.display(), e))
    }
}

fn read_clip_frames(path: &Path, limit: Option<usize>) -> Result<Vec<LabeledFrame>, String> {
    let reader = ClipReader::open(path)
        .map_err(|e| format!("cannot open clip {}: {}", path.display(), e))?;
    let iter: Box<dyn Iterator<Item = std::io::Result<LabeledFrame>>> = match limit {
        Some(n) => Box::new(reader.take(n)),
        None => Box::new(reader),
    };
    iter.collect::<std::io::Result<Vec<_>>>()
        .map_err(|e| format!("corrupt clip {}: {}", path.display(), e))
}

// ---------------------------------------------------------------------------
// record

fn cmd_record(args: &mut Args) -> Result<(), String> {
    let cfg = workload_config(args)?;
    let frames: usize = args.parsed("frames", 1200)?;
    let out = PathBuf::from(args.req("out")?);
    if frames == 0 {
        return Err("--frames must be positive".into());
    }

    let target = cfg.target;
    let fps = cfg.fps;
    let (w, h) = (cfg.render_width, cfg.render_height);
    let mut camera = VideoStream::new(0, cfg);
    let clip = camera.clip(frames);
    let bytes = write_clip(&out, &clip, fps)
        .map_err(|e| format!("cannot write {}: {}", out.display(), e))?;
    let tor = measured_tor(&clip, target);
    println!(
        "recorded {} frames ({}x{} @ {} FPS, target {}) to {} ({} bytes)",
        clip.len(),
        w,
        h,
        fps,
        target.name(),
        out.display(),
        bytes
    );
    println!("measured TOR: {:.3}", tor);
    Ok(())
}

// ---------------------------------------------------------------------------
// train

fn cmd_train(args: &mut Args) -> Result<(), String> {
    let clip_path = PathBuf::from(args.req("clip")?);
    let target = parse_target(&args.req("target")?)?;
    let out = PathBuf::from(args.req("out")?);
    let train_frames: usize = args.parsed("train-frames", usize::MAX)?;
    let seed: u64 = args.parsed("seed", 7)?;
    let fast = args.flag("fast");

    let clip = read_clip_frames(&clip_path, Some(train_frames.max(1)))?;
    if clip.is_empty() {
        return Err(format!("clip {} holds no frames", clip_path.display()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let bank = FilterBank::build(&clip, target, &bank_options(fast), &mut rng);
    println!(
        "trained on {} frames: delta_diff {:.5}, c_low {:.3}, c_high {:.3}, SNM accuracy {:.3}",
        clip.len(),
        bank.sdd.delta_diff,
        bank.snm.c_low,
        bank.snm.c_high,
        bank.snm_report.test_accuracy
    );
    CascadeProfile::from_bank(bank).save(&out)?;
    println!("profile written to {}", out.display());
    Ok(())
}

// ---------------------------------------------------------------------------
// analyze

/// A maximal run of surviving frames separated by < 2 s gaps — one "event"
/// an operator would review.
#[derive(Debug, Serialize)]
struct Event {
    start_ms: u64,
    end_ms: u64,
    frames: usize,
    peak_objects: u16,
}

#[derive(Serialize)]
struct AnalyzeReport {
    clip: String,
    target: String,
    frames_analyzed: usize,
    thresholds: StreamThresholds,
    accuracy: AccuracyReport,
    events: Vec<Event>,
}

fn group_events(survivors: &[FrameTrace]) -> Vec<Event> {
    const GAP_MS: u64 = 2000;
    let mut events: Vec<Event> = Vec::new();
    for tr in survivors {
        match events.last_mut() {
            Some(ev) if tr.pts_ms.saturating_sub(ev.end_ms) <= GAP_MS => {
                ev.end_ms = tr.pts_ms;
                ev.frames += 1;
                ev.peak_objects = ev.peak_objects.max(tr.reference_count);
            }
            _ => events.push(Event {
                start_ms: tr.pts_ms,
                end_ms: tr.pts_ms,
                frames: 1,
                peak_objects: tr.reference_count,
            }),
        }
    }
    events
}

fn cmd_analyze(args: &mut Args) -> Result<(), String> {
    let clip_path = PathBuf::from(args.req("clip")?);
    let target = parse_target(&args.req("target")?)?;
    let number: usize = args.parsed("number", 1)?;
    let filter_degree: f32 = args.parsed("filter-degree", 0.5)?;
    let profile = args.opt("profile")?.map(PathBuf::from);
    let train_frames: usize = args.parsed("train-frames", 900)?;
    let seed: u64 = args.parsed("seed", 7)?;
    let fast = args.flag("fast");
    let report_path = args.opt("report")?.map(PathBuf::from);
    let telemetry_path = args.opt("telemetry")?.map(PathBuf::from);

    // A profile skips in-situ training, so the whole clip is analyzed;
    // otherwise the clip's head trains the cascade and the tail is analyzed.
    let (mut bank, analyzed) = match profile {
        Some(p) => {
            let bank = CascadeProfile::load(&p)?.into_bank();
            if bank.target != target {
                return Err(format!(
                    "profile {} was trained for '{}', not '{}'",
                    p.display(),
                    bank.target.name(),
                    target.name()
                ));
            }
            (bank, read_clip_frames(&clip_path, None)?)
        }
        None => {
            let all = read_clip_frames(&clip_path, None)?;
            if all.len() <= train_frames {
                return Err(format!(
                    "clip holds {} frames but --train-frames {} leaves nothing to analyze \
                     (record a longer clip or pass --profile)",
                    all.len(),
                    train_frames
                ));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let bank =
                FilterBank::build(&all[..train_frames], target, &bank_options(fast), &mut rng);
            (bank, all[train_frames..].to_vec())
        }
    };
    if analyzed.is_empty() {
        return Err("no frames to analyze".into());
    }

    let th = StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(filter_degree),
        // 0 = the any-motion query (no T-YOLO count requirement)
        number_of_objects: number,
    };
    let traces = bank.trace_clip(&analyzed);
    let accuracy = evaluate_accuracy(&traces, &th);
    let survivors: Vec<FrameTrace> = traces
        .iter()
        .copied()
        .filter(|tr| cascade_pass(tr, &th))
        .collect();
    let events = group_events(&survivors);

    println!(
        "analyzed {} frames: {} forwarded ({:.1}%), {} events, error rate {:.4}, \
         {}/{} significant scenes detected",
        traces.len(),
        survivors.len(),
        100.0 * survivors.len() as f64 / traces.len() as f64,
        events.len(),
        accuracy.error_rate,
        accuracy.significant_scenes_detected,
        accuracy.significant_scenes
    );
    for (i, ev) in events.iter().enumerate() {
        println!(
            "  event {:>3}: {:>8.1}s – {:>8.1}s  {:>4} frames  peak {} {}(s)",
            i,
            ev.start_ms as f64 / 1000.0,
            ev.end_ms as f64 / 1000.0,
            ev.frames,
            ev.peak_objects,
            target.name()
        );
    }

    if let Some(path) = report_path {
        let report = AnalyzeReport {
            clip: clip_path.display().to_string(),
            target: target.name().to_string(),
            frames_analyzed: traces.len(),
            thresholds: th,
            accuracy,
            events,
        };
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serialize report: {}", e))?;
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write report {}: {}", path.display(), e))?;
        println!("report written to {}", path.display());
    }

    // Replay the analyzed traces through the discrete-event engine to get the
    // full named-series snapshot (DESIGN.md §Telemetry) plus its digest.
    if let Some(path) = telemetry_path {
        let sys = FfsVaConfig::default();
        let input = StreamInput {
            traces: traces.clone(),
            thresholds: th,
        };
        let sim = Engine::new(sys, Mode::Offline, vec![input]).run();
        let digest = PipelineDigest::from_snapshot(&sim.telemetry, sim.makespan_us);
        let export = serde_json::json!({
            "schema_version": 1,
            "clip": clip_path.display().to_string(),
            "makespan_us": sim.makespan_us,
            "digest": digest,
            "snapshot": sim.telemetry,
        });
        let json = serde_json::to_string_pretty(&export)
            .map_err(|e| format!("serialize telemetry: {}", e))?;
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write telemetry {}: {}", path.display(), e))?;
        println!("telemetry written to {}", path.display());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// simulate

/// Build the engine configuration from the common simulate/capacity knobs.
fn system_config(args: &mut Args) -> Result<FfsVaConfig, String> {
    let d = FfsVaConfig::default();
    let mut sys = FfsVaConfig {
        filter_degree: args.parsed("filter-degree", d.filter_degree)?,
        number_of_objects: args.parsed("number", d.number_of_objects)?,
        filter_gpus: args.parsed("filter-gpus", d.filter_gpus)?,
        reference_gpus: args.parsed("ref-gpus", d.reference_gpus)?,
        ..d
    };
    if let Some(b) = args.opt("batch")? {
        sys.batch_policy = parse_batch(&b)?;
    }
    if let Some(p) = args.opt("snm-precision")? {
        sys.snm_precision = parse_precision(&p)?;
    }
    if let Some(p) = args.opt("tyolo-precision")? {
        sys.tyolo_precision = parse_precision(&p)?;
    }
    Ok(sys)
}

fn prepare_pool(
    args: &mut Args,
    default_frames: usize,
    precision: Precision,
    tyolo_precision: Precision,
) -> Result<(PreparedStream, u32), String> {
    let cfg = workload_config(args)?;
    let frames: usize = args.parsed("frames", default_frames)?;
    let train_frames: usize = args.parsed("train-frames", 1500)?;
    let fast = args.flag("fast");
    let fps = cfg.fps;
    println!(
        "preparing stream '{}' (train {} frames, trace {} frames)...",
        cfg.name, train_frames, frames
    );
    let ps = prepare_stream(
        cfg,
        &PrepareOptions {
            train_frames,
            eval_frames: frames.max(1),
            bank: bank_options(fast),
            snm_precision: precision,
            tyolo_precision,
        },
    );
    println!(
        "  delta_diff {:.5}, c_low {:.3}, c_high {:.3}, measured TOR {:.3}",
        ps.delta_diff, ps.c_low, ps.c_high, ps.measured_tor
    );
    Ok((ps, fps))
}

fn cmd_simulate(args: &mut Args) -> Result<(), String> {
    let streams: usize = args.parsed("streams", 1)?;
    let mode = parse_mode(&args.opt("mode")?.unwrap_or_else(|| "online".into()))?;
    let want_baseline = args.flag("baseline");
    let json_path = args.opt("json")?.map(PathBuf::from);
    let telemetry_path = args.opt("telemetry")?.map(PathBuf::from);
    let fault_spec = args.opt("fault-plan")?;
    let instances: usize = args.parsed("instances", 0)?;
    let epoch_frames: u64 = args.parsed("epoch-frames", 150)?;
    if instances == 0 {
        if let Some(spec) = &fault_spec {
            if spec.contains("instance") {
                return Err(
                    "--fault-plan names instance-scoped faults; pass --instances N to run \
                     the cluster control plane"
                        .into(),
                );
            }
        }
    }
    let fault_plan = match (&fault_spec, instances) {
        (Some(spec), 0) => {
            let plan = FaultPlan::parse(spec).map_err(|e| format!("invalid --fault-plan: {e}"))?;
            plan.validate()
                .map_err(|e| format!("invalid --fault-plan: {e}"))?;
            Some(plan)
        }
        _ => None,
    };
    let source_plan = match args.opt("source-faults")? {
        Some(spec) => {
            let plan = SourceFaultPlan::parse(&spec)
                .map_err(|e| format!("invalid --source-faults: {e}"))?;
            plan.validate()
                .map_err(|e| format!("invalid --source-faults: {e}"))?;
            Some(plan)
        }
        None => None,
    };
    let checkpoint_dir = args.opt("checkpoint-dir")?.map(PathBuf::from);
    let resume = args.flag("resume");
    let stop_after: usize = args.parsed("stop-after", usize::MAX)?;
    if resume && checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }
    if stop_after == 0 {
        return Err("--stop-after must be positive".into());
    }
    let sys = system_config(args)?;
    if streams == 0 {
        return Err("--streams must be positive".into());
    }
    let ckpt_interval = sys.checkpoint_interval_frames;
    let (ps, fps) = prepare_pool(args, 900, sys.snm_precision, sys.tyolo_precision)?;

    let mut inputs = tile_inputs(&[ps], streams, &sys);
    // Simulate a kill: the run drains cleanly after the first N frames, so
    // the checkpoints on disk describe a consistent prefix to resume from.
    if stop_after != usize::MAX {
        for input in &mut inputs {
            input.traces.truncate(stop_after);
        }
    }
    if instances > 0 {
        if !matches!(mode, Mode::Online) {
            return Err("--instances runs the online cluster control plane; drop --mode".into());
        }
        if want_baseline || resume || stop_after != usize::MAX {
            return Err("--instances is incompatible with --baseline/--resume/--stop-after".into());
        }
        let cluster_plan = match &fault_spec {
            Some(spec) => {
                let plan = ClusterFaultPlan::parse(spec)
                    .map_err(|e| format!("invalid --fault-plan: {e}"))?;
                plan.validate()
                    .map_err(|e| format!("invalid --fault-plan: {e}"))?;
                Some(plan)
            }
            None => None,
        };
        let root = checkpoint_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ffsva_cluster_{}", std::process::id()))
        });
        let cfg = ClusterConfig::new(instances, &root).with_epoch_frames(epoch_frames);
        let mut cluster = Cluster::new(sys, cfg);
        if let Some(plan) = &cluster_plan {
            cluster = cluster.with_fault_plan(plan);
        }
        if let Some(plan) = &source_plan {
            cluster = cluster.with_source_plan(plan);
        }
        let report = cluster
            .run(inputs)
            .map_err(|e| format!("cluster run failed: {e}"))?;

        println!(
            "cluster: {} instance(s) x {} stream(s) over {} control epoch(s) \
             ({} frames/stream/epoch)",
            instances,
            report.outcomes.len(),
            report.epochs,
            epoch_frames
        );
        println!(
            "  outcomes: {} completed, {} rejected; instances crashed {}; \
             final liveness {:?}, loads {:?}",
            report.completed(),
            report.rejected(),
            report.telemetry.counter("cluster.instances_crashed"),
            report.alive,
            report.final_loads
        );
        println!(
            "  re-forwards {} (recovered from dead instances {}, retries {}, given up {}); \
             mean hand-over {:.3} ms",
            report.reforwards(),
            report.telemetry.counter("cluster.recoveries"),
            report.telemetry.counter("cluster.reforward_retries"),
            report.telemetry.counter("cluster.reforward_given_up"),
            report.reforward_latency_ms()
        );
        for (s, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                StreamOutcome::Completed {
                    instance,
                    reforwards,
                    survivors,
                } => println!(
                    "  stream {s}: completed on instance {instance} \
                     ({reforwards} re-forward(s), {} surviving frame(s))",
                    survivors.len()
                ),
                StreamOutcome::Rejected {
                    reforwards,
                    retries,
                } => println!(
                    "  stream {s}: REJECTED after {reforwards} re-forward(s), \
                     {retries} failed placement(s)"
                ),
                StreamOutcome::Unfinished {
                    instance,
                    cursor,
                    reforwards,
                } => println!(
                    "  stream {s}: unfinished at frame {cursor} \
                     (instance {instance:?}, {reforwards} re-forward(s))"
                ),
                StreamOutcome::Dropped { cursor, reforwards } => println!(
                    "  stream {s}: dropped by the operator at frame {cursor} \
                     ({reforwards} re-forward(s))"
                ),
            }
        }
        if let Some(path) = json_path {
            let json = serde_json::to_string_pretty(&report)
                .map_err(|e| format!("serialize result: {}", e))?;
            std::fs::write(&path, json)
                .map_err(|e| format!("cannot write {}: {}", path.display(), e))?;
            println!("result written to {}", path.display());
        }
        if let Some(path) = telemetry_path {
            let json = serde_json::to_string_pretty(&report.telemetry)
                .map_err(|e| format!("serialize telemetry: {}", e))?;
            std::fs::write(&path, json)
                .map_err(|e| format!("cannot write telemetry {}: {}", path.display(), e))?;
            println!("telemetry written to {}", path.display());
        }
        return Ok(());
    }

    let frames_per_stream = inputs[0].traces.len();
    let mut engine = Engine::new(sys, mode, inputs);
    if let Some(plan) = &fault_plan {
        engine = engine.with_fault_plan(plan);
    }
    if let Some(plan) = &source_plan {
        engine = engine.with_source_plan(plan);
    }
    if let Some(dir) = &checkpoint_dir {
        engine = engine.with_checkpoint(CheckpointSpec::new(dir, ckpt_interval, resume));
    }
    let r = engine.run();

    println!(
        "simulated {} stream(s) x {} frames ({:?}): makespan {:.2}s, {:.1} FPS aggregate",
        streams,
        frames_per_stream,
        mode,
        r.makespan_us / 1e6,
        r.throughput_fps
    );
    println!(
        "  stages executed SDD/SNM/T-YOLO/ref: {:?}; dropped: {:?}",
        r.stage_executed, r.stage_dropped
    );
    if fault_plan.is_some() {
        println!(
            "  fault plan active; frames quarantined per stream: {:?}",
            r.per_stream_quarantined
        );
    }
    if source_plan.is_some() {
        println!(
            "  source faults active: reconnects {}, corrupt {}, reorder evictions {}, \
             duplicates {}; sources lost: {:?}",
            r.telemetry.counter("src.reconnects"),
            r.telemetry.counter("src.corrupt"),
            r.telemetry.counter("src.reorder_evictions"),
            r.telemetry.counter("src.duplicates"),
            r.per_stream_source_lost
        );
    }
    if let Some(dir) = &checkpoint_dir {
        println!(
            "  checkpoints: {} write(s) to {}{}",
            r.telemetry.counter("checkpoint.writes"),
            dir.display(),
            if resume { " (resumed)" } else { "" }
        );
    }
    println!(
        "  ref-path latency mean {:.1} ms, p99 {:.1} ms; T-YOLO {:.1} FPS; \
         CPU {:.0}%, GPU0 {:.0}%, GPU1 {:.0}%",
        r.mean_ref_latency_us / 1e3,
        r.p99_ref_latency_us / 1e3,
        r.tyolo_fps,
        100.0 * r.cpu_utilization,
        100.0 * r.gpu0_utilization,
        100.0 * r.gpu1_utilization
    );
    if matches!(mode, Mode::Online) {
        println!(
            "  real-time at {} FPS: {}",
            fps,
            if r.realtime(fps) { "yes" } else { "NO" }
        );
    }
    if want_baseline {
        let gpus = 2;
        let b = run_baseline(streams, frames_per_stream, mode, fps, gpus);
        println!(
            "  YOLOv2-on-{}-GPUs baseline: {:.1} FPS aggregate — cascade speedup {:.2}x",
            gpus,
            b.throughput_fps,
            r.throughput_fps / b.throughput_fps.max(1e-9)
        );
    }
    if let Some(path) = json_path {
        let json =
            serde_json::to_string_pretty(&r).map_err(|e| format!("serialize result: {}", e))?;
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write {}: {}", path.display(), e))?;
        println!("result written to {}", path.display());
    }
    if let Some(path) = telemetry_path {
        let digest = PipelineDigest::from_snapshot(&r.telemetry, r.makespan_us);
        let export = serde_json::json!({
            "schema_version": 1,
            "makespan_us": r.makespan_us,
            "digest": digest,
            "snapshot": r.telemetry,
        });
        let json = serde_json::to_string_pretty(&export)
            .map_err(|e| format!("serialize telemetry: {}", e))?;
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write telemetry {}: {}", path.display(), e))?;
        println!("telemetry written to {}", path.display());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// capacity

fn cmd_capacity(args: &mut Args) -> Result<(), String> {
    let max_streams: usize = args.parsed("max-streams", 64)?;
    let instances: usize = args.parsed("instances", 1)?;
    let pooled = args.flag("pooled");
    let pool_workers: usize = args.parsed("pool-workers", 8)?;
    let thread_budget: usize = args.parsed("thread-budget", DEFAULT_THREAD_BUDGET)?;
    let sys = system_config(args)?;
    let (ps, fps) = prepare_pool(args, 900, sys.snm_precision, sys.tyolo_precision)?;
    let frames_per_stream = ps.traces.len();
    let pool = [ps];

    let max = find_max_online_streams(&sys, |n| tile_inputs(&pool, n, &sys), max_streams);
    // Baseline capacity: YOLOv2 on every GPU the cascade uses in total.
    let gpus = (sys.filter_gpus + sys.reference_gpus).max(1);
    let mut baseline_max = 0usize;
    for n in 1..=max_streams {
        if run_baseline(n, frames_per_stream, Mode::Online, fps, gpus).realtime(fps) {
            baseline_max = n;
        } else {
            break;
        }
    }

    println!(
        "FFS-VA ({} filter GPU(s) + {} reference GPU(s)): {} live {}-FPS stream(s)",
        sys.filter_gpus, sys.reference_gpus, max, fps
    );
    println!(
        "YOLOv2 baseline on {} GPU(s): {} live stream(s)",
        gpus, baseline_max
    );
    if baseline_max > 0 && max > 0 {
        println!(
            "cascade sustains {:.1}x more streams",
            max as f64 / baseline_max as f64
        );
    }
    if instances > 1 {
        let fleet_max = find_max_cluster_streams(
            &sys,
            instances,
            |n| tile_inputs(&pool, n, &sys),
            max_streams,
        );
        println!();
        println!(
            "fleet of {} instances (re-forwarding allowed to spread load): \
             {} live {}-FPS stream(s){}",
            instances,
            fleet_max,
            fps,
            if max > 0 {
                format!(" — {:.1}x one instance", fleet_max as f64 / max as f64)
            } else {
                String::new()
            }
        );
    }
    if pooled {
        if pool_workers == 0 {
            return Err("--pool-workers must be positive".into());
        }
        let threaded = max_streams_by_threads(&sys, thread_budget);
        let pooled_sys = sys.with_pool_workers(pool_workers, pool_workers);
        let pooled_max = max_streams_by_threads(&pooled_sys, thread_budget);
        println!();
        println!("thread ceiling at a {thread_budget}-thread budget (DESIGN.md §11):");
        println!(
            "  per-stream threads ({} threads per stream): {} stream(s)",
            threads_for_streams(&sys, 1).saturating_sub(1),
            threaded
        );
        println!(
            "  sharded pools ({pool_workers} SDD + {pool_workers} SNM workers): {} stream(s)",
            pooled_max
        );
        if threaded > 0 && pooled_max > 0 {
            println!(
                "  pooling hosts {:.1}x more streams per instance",
                pooled_max as f64 / threaded as f64
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// bench

/// One engine leg of the bench report.
#[derive(Serialize)]
struct BenchSection {
    engine: &'static str,
    streams: usize,
    frames_per_stream: usize,
    elapsed_s: f64,
    digest: PipelineDigest,
}

/// The `BENCH.json` schema the CI gate (`scripts/bench_gate.py`) consumes.
#[derive(Serialize)]
struct BenchReport {
    schema_version: u32,
    workload: String,
    seed: u64,
    kernel: KernelBench,
    stage: StageBench,
    accuracy: AccuracyBench,
    cluster: ClusterBench,
    des: BenchSection,
    rt: BenchSection,
}

/// Cluster control-plane series (`cluster.*`): a deterministic two-instance
/// fleet with an injected `instance0:crash` mid-run, measuring the
/// checkpoint-riding re-forward hand-over latency, plus the fleet planner's
/// stream ceiling. Structural except for the hand-over latency, which is a
/// real file-migration wall-time measurement.
#[derive(Serialize)]
struct ClusterBench {
    /// Fleet size both series are reported at.
    instances: usize,
    /// Largest stream count the fleet sustains in real time (planner).
    streams_sustained: f64,
    /// Mean checkpoint hand-over latency across re-forwards (ms).
    reforward_latency_ms: f64,
    /// Successful re-forwards in the crash scenario.
    reforwards: f64,
    /// Streams that completed despite the crash (all offered must).
    streams_completed: f64,
}

/// Fleet size the `cluster.*` series are reported at.
const BENCH_CLUSTER_INSTANCES: usize = 2;
/// Streams offered in the bench crash scenario.
const BENCH_CLUSTER_STREAMS: usize = 2;

/// Run the bench traces through a two-instance cluster that loses instance 0
/// mid-run: every stream must complete by riding its checkpoint onto the
/// survivor, and the hand-over latency lands in `cluster.reforward_latency_ms`.
fn bench_cluster(
    sys: &FfsVaConfig,
    traces: &[FrameTrace],
    th: StreamThresholds,
) -> Result<ClusterBench, String> {
    let input = StreamInput {
        traces: traces.to_vec(),
        thresholds: th,
    };
    let offers: Vec<StreamInput> = (0..BENCH_CLUSTER_STREAMS).map(|_| input.clone()).collect();
    // three epochs per trace; the crash lands after one full epoch, so the
    // dead instance's streams have checkpoints to ride
    let epoch = (traces.len() as u64 / 3).max(1);
    let crash = traces.len() as u64 / 2;
    let plan = ClusterFaultPlan::parse(&format!("instance0:crash@{crash}"))
        .map_err(|e| format!("cluster bench fault plan: {e}"))?;
    let root = std::env::temp_dir().join(format!("ffsva_bench_cluster_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = ClusterConfig::new(BENCH_CLUSTER_INSTANCES, &root).with_epoch_frames(epoch);
    let report = Cluster::new(*sys, cfg)
        .with_fault_plan(&plan)
        .run(offers)
        .map_err(|e| format!("cluster bench run: {e}"))?;
    let _ = std::fs::remove_dir_all(&root);

    // Planner leg on a trace prefix: keeps the doubling search cheap on
    // --full workloads while still pricing the real cascade costs.
    let probe = StreamInput {
        traces: traces[..traces.len().min(300)].to_vec(),
        thresholds: th,
    };
    let sustained = find_max_cluster_streams(
        sys,
        BENCH_CLUSTER_INSTANCES,
        |n| (0..n).map(|_| probe.clone()).collect(),
        16,
    );
    Ok(ClusterBench {
        instances: BENCH_CLUSTER_INSTANCES,
        streams_sustained: sustained as f64,
        reforward_latency_ms: report.reforward_latency_ms(),
        reforwards: report.reforwards() as f64,
        streams_completed: report.completed() as f64,
    })
}

/// int8-vs-f32 cascade accuracy (`accuracy.*`): what the quantized SNM path
/// costs in missed scenes on this bench workload. Informational series for
/// the gate's diffing, but `int8_scene_miss_delta_pp` is also bounded
/// in-process: the bench command itself fails when quantization loses more
/// than [`INT8_SCENE_MISS_BOUND_PP`] percentage points of scenes, so the CI
/// bench-gate job catches a quantization regression even before the
/// baseline comparison runs.
#[derive(Serialize)]
struct AccuracyBench {
    /// Significant-scene miss rate of the f32 cascade.
    f32_scene_miss_rate: f64,
    /// The same clip and thresholds with int8 SNM inference.
    int8_scene_miss_rate: f64,
    /// Delta in percentage points (int8 − f32); negative when int8 wins.
    int8_scene_miss_delta_pp: f64,
}

/// Hard ceiling on the int8 scene-miss delta, in percentage points.
const INT8_SCENE_MISS_BOUND_PP: f64 = 2.0;

/// Kernel-level series (`kernel.*` dotted paths in `BENCH.json`).
#[derive(Serialize)]
struct KernelBench {
    /// Blocked-GEMM throughput on a cache-warm 128x128x128 `matmul_into`
    /// (the runtime-dispatched kernel — AVX2/FMA when built with `simd` on a
    /// capable host, scalar otherwise).
    matmul_gflops: f64,
    /// The same workload forced down the scalar reference GEMM.
    scalar_matmul_gflops: f64,
    /// Alias of `matmul_gflops` under the name the SIMD gate pins: the
    /// dispatched kernel *is* the SIMD kernel on a capable `--features simd`
    /// build, and the scalar one elsewhere — so this series gates the path
    /// actually shipped.
    simd_matmul_gflops: f64,
    /// One `im2col_into` pass on the SNM layer-1 geometry (1x50x50, k5 s2 p2).
    im2col_us: f64,
    /// One dispatched SDD MSE distance over a 100x100 downsample pair.
    sdd_distance_us: f64,
    /// The same distance on the scalar reference reduction.
    sdd_distance_scalar_us: f64,
    /// Whether the AVX2/FMA paths were live for the run.
    simd_active: bool,
}

/// Stage-level series (`stage.*` dotted paths in `BENCH.json`).
#[derive(Serialize)]
struct StageBench {
    snm: SnmStageBench,
    pool: PoolStageBench,
}

/// Stream-hosting ceiling of the sharded stage pools (`stage.pool.*`):
/// how many concurrent streams fit the thread budget with pooled SDD/SNM
/// workers vs. one thread per stream per stage. Both are structural
/// (deterministic planner output, not wall-clock measurements).
#[derive(Serialize)]
struct PoolStageBench {
    /// Streams one instance hosts with sharded pools (the headline series).
    streams_sustained: f64,
    /// Streams the per-stream-thread layout hosts at the same budget.
    streams_threaded: f64,
    /// Workers per pooled stage used for the ceiling.
    workers: usize,
    thread_budget: usize,
}

/// Workers per pooled stage the `stage.pool.*` ceiling is reported at.
const POOL_BENCH_WORKERS: usize = 8;

fn bench_pool_ceiling() -> PoolStageBench {
    let sys = FfsVaConfig::default();
    let pooled = sys.with_pool_workers(POOL_BENCH_WORKERS, POOL_BENCH_WORKERS);
    PoolStageBench {
        streams_sustained: max_streams_by_threads(&pooled, DEFAULT_THREAD_BUDGET) as f64,
        streams_threaded: max_streams_by_threads(&sys, DEFAULT_THREAD_BUDGET) as f64,
        workers: POOL_BENCH_WORKERS,
        thread_budget: DEFAULT_THREAD_BUDGET,
    }
}

/// Measured SNM batch-forward throughput via `predict_batch_frames` — the
/// exact entry point the RT batch stage calls.
#[derive(Serialize)]
struct SnmStageBench {
    /// Frames/s at the headline batch size (`batch_size`).
    batch_fps: f64,
    /// Frames/s at batch size 1 (the pre-batching per-frame path).
    batch1_fps: f64,
    /// Frames/s at the headline batch size on the int8 quantized path
    /// (`predict_batch_frames_int8`).
    int8_fps: f64,
    batch_size: usize,
    /// Affine fit of the measured curve (`fit_batch_curve`); 0 when degenerate.
    fitted_invoke_us: f64,
    fitted_per_frame_us: f64,
}

/// Headline batch size the `stage.snm.batch_fps` series is reported at.
const SNM_BENCH_BATCH: usize = 10;

/// Measure raw kernel throughput for the hot primitives every cascade stage
/// bottoms out in: the blocked GEMM (dispatched and scalar), the im2col
/// lowering, and the SDD distance reduction (dispatched and scalar).
fn bench_kernels() -> KernelBench {
    use ffs_va::tensor::ops::{im2col_into, matmul_into, matmul_into_scalar, ConvGeom};
    use ffs_va::tensor::simd::{sum_sq_diff, sum_sq_diff_scalar};
    use ffs_va::tensor::Tensor;
    use std::time::Instant;

    let n = 128usize;
    let fill = |seed: usize| -> Vec<f32> {
        (0..n * n)
            .map(|i| (((i * 31 + seed) % 17) as f32 - 8.0) * 0.1)
            .collect()
    };
    let a = Tensor::from_vec(&[n, n], fill(1));
    let b = Tensor::from_vec(&[n, n], fill(2));
    let flops = |reps: usize, secs: f64| 2.0 * (n * n * n) as f64 * reps as f64 / secs / 1e9;
    let mut out = Vec::new();
    matmul_into(&a, &b, &mut out); // warm-up: allocates the output buffer
    let reps = 40;
    let t0 = Instant::now();
    for _ in 0..reps {
        matmul_into(&a, &b, &mut out);
    }
    let matmul_gflops = flops(reps, t0.elapsed().as_secs_f64());
    matmul_into_scalar(&a, &b, &mut out); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        matmul_into_scalar(&a, &b, &mut out);
    }
    let scalar_matmul_gflops = flops(reps, t0.elapsed().as_secs_f64());

    let geom = ConvGeom::new(50, 50, 5, 2, 2).expect("SNM layer-1 geometry");
    let img: Vec<f32> = (0..50 * 50).map(|i| (i % 251) as f32 / 250.0).collect();
    let mut cols = Vec::new();
    im2col_into(&img, 1, geom, &mut cols); // warm-up
    let reps = 400;
    let t0 = Instant::now();
    for _ in 0..reps {
        im2col_into(&img, 1, geom, &mut cols);
    }
    let im2col_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

    // SDD distance on its real geometry: MSE between two 100x100 downsamples.
    let side = ffs_va::models::SDD_SIZE;
    let x: Vec<f32> = (0..side * side).map(|i| (i % 253) as f32 / 252.0).collect();
    let y: Vec<f32> = (0..side * side).map(|i| (i % 241) as f32 / 240.0).collect();
    let reps = 2000;
    let mut sink = 0.0f32;
    sink += sum_sq_diff(&x, &y); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        sink += sum_sq_diff(&x, &y);
    }
    let sdd_distance_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    sink += sum_sq_diff_scalar(&x, &y);
    let t0 = Instant::now();
    for _ in 0..reps {
        sink += sum_sq_diff_scalar(&x, &y);
    }
    let sdd_distance_scalar_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    assert!(sink.is_finite());

    KernelBench {
        matmul_gflops,
        scalar_matmul_gflops,
        simd_matmul_gflops: matmul_gflops,
        im2col_us,
        sdd_distance_us,
        sdd_distance_scalar_us,
        simd_active: ffs_va::tensor::simd_active(),
    }
}

/// Probe the trained SNM's real batch-latency curve through
/// `predict_batch_frames` and fit the DES cost model to it.
///
/// Returns the stage series plus the fitted `CostSpec` (for `--fit-cost`).
fn bench_snm_stage(snm: &mut SnmModel, clip: &[LabeledFrame]) -> (SnmStageBench, Option<CostSpec>) {
    use std::time::Instant;

    let mut scratch = Scratch::new();
    let sizes = [1usize, 2, 5, SNM_BENCH_BATCH, 20, 30];
    let mut samples: Vec<(usize, f64)> = Vec::new();
    let (mut batch_fps, mut batch1_fps) = (0.0, 0.0);
    for &size in &sizes {
        let frames: Vec<&Frame> = (0..size).map(|i| &clip[i % clip.len()].frame).collect();
        let _ = snm.predict_batch_frames(&frames, &mut scratch); // warm scratch
        let reps = (64 / size).max(3);
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = snm.predict_batch_frames(&frames, &mut scratch);
        }
        let batch_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        samples.push((size, batch_us));
        let fps = size as f64 * 1e6 / batch_us;
        if size == 1 {
            batch1_fps = fps;
        }
        if size == SNM_BENCH_BATCH {
            batch_fps = fps;
        }
    }
    // int8 leg at the headline batch size, through the quantized lowering.
    let frames: Vec<&Frame> = (0..SNM_BENCH_BATCH)
        .map(|i| &clip[i % clip.len()].frame)
        .collect();
    let _ = snm.predict_batch_frames_int8(&frames, &mut scratch); // build + warm
    let reps = 16;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = snm.predict_batch_frames_int8(&frames, &mut scratch);
    }
    let int8_fps = (SNM_BENCH_BATCH * reps) as f64 / t0.elapsed().as_secs_f64();

    // Fit keeps the paper-calibrated resize/memory costs; only the invoke
    // intercept and per-frame slope come from the measured curve.
    let paper = ffs_va::models::snm_cost();
    let fitted = fit_batch_curve(&samples, paper.resize_us, paper.mem_bytes);
    let stage = SnmStageBench {
        batch_fps,
        batch1_fps,
        int8_fps,
        batch_size: SNM_BENCH_BATCH,
        fitted_invoke_us: fitted.map_or(0.0, |s| s.invoke_us),
        fitted_per_frame_us: fitted.map_or(0.0, |s| s.per_frame_us),
    };
    (stage, fitted)
}

/// Run the headline workload through both engines and write `BENCH.json`.
///
/// The DES leg runs N identical streams in virtual time, so its numbers are
/// bit-deterministic for a fixed seed; the RT leg runs the real pixel models
/// on one stream and measures wall time (the noisy, machine-dependent half —
/// the gate's relative tolerance exists for it).
fn cmd_bench(args: &mut Args) -> Result<(), String> {
    let out = PathBuf::from(args.opt("out")?.unwrap_or_else(|| "BENCH.json".into()));
    let full = args.flag("full");
    let fit_cost = args.flag("fit-cost");
    let precision = match args.opt("snm-precision")? {
        Some(p) => parse_precision(&p)?,
        None => Precision::F32,
    };
    let tyolo_precision = match args.opt("tyolo-precision")? {
        Some(p) => parse_precision(&p)?,
        None => Precision::F32,
    };
    let streams: usize = args.parsed("streams", 4)?;
    let frames: usize = args.parsed("frames", if full { 2000 } else { 600 })?;
    let train_frames: usize = args.parsed("train-frames", if full { 2200 } else { 900 })?;
    let tor: f64 = args.parsed("tor", 0.3)?;
    let seed: u64 = args.parsed("seed", 42)?;
    if streams == 0 || frames == 0 {
        return Err("--streams and --frames must be positive".into());
    }

    let cfg = if full {
        let mut c = workloads::jackson();
        c.seed = seed;
        c
    } else {
        workloads::test_tiny(ObjectClass::Car, tor, seed)
    };
    let workload_name = cfg.name.clone();
    let target = cfg.target;
    let mut sys = FfsVaConfig::default()
        .with_snm_precision(precision)
        .with_tyolo_precision(tyolo_precision);
    println!(
        "bench: workload '{}' (train {} frames, bench {} frames; {} DES stream(s) + 1 RT stream)",
        workload_name, train_frames, frames, streams
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut camera = VideoStream::new(0, cfg);
    let training = camera.clip(train_frames);
    let mut bank = FilterBank::build(&training, target, &bank_options(!full), &mut rng);
    let clip = camera.clip(frames);
    let traces = bank.trace_clip(&clip);
    // The int8 trace differs only in snm_prob, so diffing the two accuracy
    // reports isolates exactly what quantization costs the cascade.
    let traces_int8 = bank.trace_clip_int8(&clip);

    // Kernel + stage series come before the engine legs: `run_pipeline_rt`
    // consumes the bank, so probe a clone of the trained SNM here.
    let kernel = bench_kernels();
    let mut probe_snm = bank.snm.clone();
    let (snm_stage, fitted) = bench_snm_stage(&mut probe_snm, &clip);
    println!();
    println!(
        "kernels: matmul {:.2} GFLOP/s (scalar {:.2}), im2col {:.1} us (SNM layer 1), \
         sdd distance {:.2} us (scalar {:.2}) [simd {}]",
        kernel.matmul_gflops,
        kernel.scalar_matmul_gflops,
        kernel.im2col_us,
        kernel.sdd_distance_us,
        kernel.sdd_distance_scalar_us,
        if kernel.simd_active { "on" } else { "off" }
    );
    println!(
        "snm stage: batch{} {:.0} fps vs batch1 {:.0} fps, int8 {:.0} fps \
         (fit: invoke {:.0} us + {:.1} us/frame)",
        snm_stage.batch_size,
        snm_stage.batch_fps,
        snm_stage.batch1_fps,
        snm_stage.int8_fps,
        snm_stage.fitted_invoke_us,
        snm_stage.fitted_per_frame_us
    );
    let pool_stage = bench_pool_ceiling();
    println!(
        "pool stage: {:.0} stream(s) pooled vs {:.0} threaded at a {}-thread budget",
        pool_stage.streams_sustained, pool_stage.streams_threaded, pool_stage.thread_budget
    );
    if fit_cost {
        match fitted {
            Some(spec) => {
                println!("--fit-cost: DES SNM stage uses the measured batch curve");
                sys = sys.with_snm_cost(spec);
            }
            None => println!("--fit-cost: degenerate batch curve, keeping calibrated costs"),
        }
    }

    let th = StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(sys.filter_degree),
        number_of_objects: sys.number_of_objects,
    };

    let acc_f32 = evaluate_accuracy(&traces, &th);
    let acc_int8 = evaluate_accuracy(&traces_int8, &th);
    let accuracy = AccuracyBench {
        f32_scene_miss_rate: acc_f32.scene_miss_rate,
        int8_scene_miss_rate: acc_int8.scene_miss_rate,
        int8_scene_miss_delta_pp: (acc_int8.scene_miss_rate - acc_f32.scene_miss_rate) * 100.0,
    };
    println!(
        "accuracy: scene miss f32 {:.4} vs int8 {:.4} (delta {:+.2} pp, bound {:.1} pp)",
        accuracy.f32_scene_miss_rate,
        accuracy.int8_scene_miss_rate,
        accuracy.int8_scene_miss_delta_pp,
        INT8_SCENE_MISS_BOUND_PP
    );
    if accuracy.int8_scene_miss_delta_pp > INT8_SCENE_MISS_BOUND_PP {
        return Err(format!(
            "int8 quantization misses {:.2} pp more scenes than f32 (bound {:.1} pp)",
            accuracy.int8_scene_miss_delta_pp, INT8_SCENE_MISS_BOUND_PP
        ));
    }

    let engine_traces = match precision {
        Precision::F32 => &traces,
        Precision::Int8 => &traces_int8,
    };

    let cluster = bench_cluster(&sys, engine_traces, th)?;
    println!(
        "cluster: {} instance(s) sustain {:.0} stream(s); crash scenario: \
         {:.0}/{} streams completed via {:.0} re-forward(s), hand-over {:.3} ms",
        cluster.instances,
        cluster.streams_sustained,
        cluster.streams_completed,
        BENCH_CLUSTER_STREAMS,
        cluster.reforwards,
        cluster.reforward_latency_ms
    );

    let inputs: Vec<StreamInput> = (0..streams)
        .map(|_| StreamInput {
            traces: engine_traces.clone(),
            thresholds: th,
        })
        .collect();
    let des = Engine::new(sys, Mode::Offline, inputs).run();
    let des_digest = PipelineDigest::from_snapshot(&des.telemetry, des.makespan_us);
    println!();
    println!("DES engine ({} stream(s), virtual time):", streams);
    println!("{}", digest_table(&des_digest));

    let rt = run_pipeline_rt(clip, bank, &sys);
    let rt_digest = PipelineDigest::from_snapshot(&rt.telemetry, rt.wall_time_s * 1e6);
    println!("RT engine (1 stream, wall time):");
    println!("{}", digest_table(&rt_digest));

    let report = BenchReport {
        schema_version: 1,
        workload: workload_name,
        seed,
        kernel,
        stage: StageBench {
            snm: snm_stage,
            pool: pool_stage,
        },
        accuracy,
        cluster,
        des: BenchSection {
            engine: "des",
            streams,
            frames_per_stream: frames,
            elapsed_s: des.makespan_us / 1e6,
            digest: des_digest,
        },
        rt: BenchSection {
            engine: "rt",
            streams: 1,
            frames_per_stream: frames,
            elapsed_s: rt.wall_time_s,
            digest: rt_digest,
        },
    };
    let json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serialize bench: {}", e))?;
    std::fs::write(&out, json).map_err(|e| format!("cannot write {}: {}", out.display(), e))?;
    println!("bench report written to {}", out.display());
    Ok(())
}

// ---------------------------------------------------------------------------
// tune

/// Probe the real SNM batch-latency curve (same sweep as bench). `--fit-cost`
/// feeds this to `fit_batch_curve_checked` and only trusts the fit when its
/// r² clears the `--min-r2` gate.
fn probe_snm_curve(snm: &mut SnmModel, clip: &[LabeledFrame]) -> Vec<(usize, f64)> {
    use std::time::Instant;
    let mut scratch = Scratch::new();
    let mut samples = Vec::new();
    for &size in &[1usize, 2, 5, SNM_BENCH_BATCH, 20, 30] {
        let frames: Vec<&Frame> = (0..size).map(|i| &clip[i % clip.len()].frame).collect();
        let _ = snm.predict_batch_frames(&frames, &mut scratch); // warm scratch
        let reps = (64 / size).max(3);
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = snm.predict_batch_frames(&frames, &mut scratch);
        }
        samples.push((size, t0.elapsed().as_secs_f64() * 1e6 / reps as f64));
    }
    samples
}

fn precision_name(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f32",
        Precision::Int8 => "int8",
    }
}

fn tune_row(rank: usize, c: &TuneCandidate) -> String {
    format!(
        "{:>4} {:>6.2} {:>5.2} {:>5} {:>5} {:>5} {:>5} {:>7.3} {:>7} {:>9.0}",
        rank,
        c.knobs.delta_scale,
        c.knobs.filter_degree,
        c.knobs.relax,
        c.knobs.batch_size,
        c.knobs.num_tyolo,
        precision_name(c.knobs.snm_precision),
        c.scene_miss_rate * 100.0,
        c.forwarded_frames,
        c.predicted_fps.unwrap_or(0.0)
    )
}

/// The `--bless` snippet: the winner as an engine config plus the matching
/// per-stream thresholds (the shape `serve` stream specs accept).
#[derive(Serialize)]
struct BlessedConfig<'a> {
    config: &'a FfsVaConfig,
    thresholds: &'a StreamThresholds,
}

/// Deterministic knob search + optional drift-recalibration ablation.
fn cmd_tune(args: &mut Args) -> Result<(), String> {
    let out = PathBuf::from(args.opt("out")?.unwrap_or_else(|| "TUNE.json".into()));
    let bless = args.opt("bless")?.map(PathBuf::from);
    let drift_out = PathBuf::from(
        args.opt("drift-out")?
            .unwrap_or_else(|| "DRIFT.json".into()),
    );
    let full = args.flag("full");
    let fit_cost = args.flag("fit-cost");
    let want_drift = args.flag("drift-ablation");
    let streams: usize = args.parsed("streams", 4)?;
    let frames: usize = args.parsed("frames", if full { 2000 } else { 600 })?;
    let train_frames: usize = args.parsed("train-frames", if full { 2200 } else { 900 })?;
    let tor: f64 = args.parsed("tor", 0.3)?;
    let seed: u64 = args.parsed("seed", 42)?;
    let miss_bound: f64 = args.parsed("miss-bound", 0.02)?;
    let des_budget: usize = args.parsed("des-budget", 64)?;
    let top_k: usize = args.parsed("top", 10)?;
    let n_obj: usize = args.parsed("n-obj", 1)?;
    let min_r2: f64 = args.parsed("min-r2", 0.9)?;
    // defaults sized for the eval-clip length, not the RT-engine default:
    // ~10 windows across the day→night descent, firing at a 2× mean shift
    let drift_window: usize = args.parsed("drift-window", 60)?;
    let drift_ratio: f64 = args.parsed("drift-ratio", 2.0)?;
    if streams == 0 || frames == 0 {
        return Err("--streams and --frames must be positive".into());
    }
    if !(0.0..=1.0).contains(&miss_bound) {
        return Err("--miss-bound must be in [0, 1]".into());
    }

    let cfg = if full {
        let mut c = workloads::jackson();
        c.seed = seed;
        c
    } else {
        workloads::test_tiny(ObjectClass::Car, tor, seed)
    };
    let workload_name = cfg.name.clone();
    let target = cfg.target;
    println!(
        "tune: workload '{}' (train {} frames, calibrate {} frames; \
         miss bound {:.1}%, DES budget {})",
        workload_name,
        train_frames,
        frames,
        miss_bound * 100.0,
        des_budget
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut camera = VideoStream::new(0, cfg);
    let training = camera.clip(train_frames);
    let mut bank = FilterBank::build(&training, target, &bank_options(!full), &mut rng);
    let calib = camera.clip(frames);
    let traces_f32 = bank.trace_clip(&calib);
    let traces_int8 = bank.trace_clip_int8(&calib);

    let snm_cost = if fit_cost {
        let mut probe = bank.snm.clone();
        let samples = probe_snm_curve(&mut probe, &calib);
        let paper = ffs_va::models::snm_cost();
        match fit_batch_curve_checked(&samples, paper.resize_us, paper.mem_bytes) {
            Some(fit) if fit.r_squared >= min_r2 => {
                println!(
                    "--fit-cost: DES priced with the measured SNM curve \
                     (invoke {:.0} us + {:.1} us/frame, r² {:.3})",
                    fit.spec.invoke_us, fit.spec.per_frame_us, fit.r_squared
                );
                Some(fit.spec)
            }
            Some(fit) => {
                println!(
                    "--fit-cost: fit r² {:.3} below --min-r2 {:.2} \
                     (rmse {:.0} us); keeping calibrated costs",
                    fit.r_squared, min_r2, fit.rmse_us
                );
                None
            }
            None => {
                println!("--fit-cost: degenerate batch curve, keeping calibrated costs");
                None
            }
        }
    } else {
        None
    };

    let input = TuneInput {
        workload: workload_name.clone(),
        traces_f32,
        traces_int8: Some(traces_int8),
        delta_diff: bank.sdd.delta_diff,
        c_low: bank.snm.c_low,
        c_high: bank.snm.c_high,
    };
    let opts = TuneOptions {
        miss_rate_bound: miss_bound,
        streams,
        number_of_objects: n_obj,
        des_budget,
        top_k,
        snm_cost,
        seed,
    };
    let report = tune(&input, &opts);

    println!(
        "searched {} candidate(s): {} feasible, {} DES run(s)",
        report.evaluated, report.feasible, report.des_runs
    );
    let base = &report.baseline;
    let base_fps = base.predicted_fps.unwrap_or(0.0);
    println!(
        "baseline: miss {:.3}%, {} forwarded -> {:.0} fps{}",
        base.scene_miss_rate * 100.0,
        base.forwarded_frames,
        base_fps,
        if base.feasible { "" } else { "  [infeasible]" }
    );
    match &report.winner {
        Some(w) => {
            let fps = w.predicted_fps.unwrap_or(0.0);
            let gain = if base_fps > 0.0 {
                (fps / base_fps - 1.0) * 100.0
            } else {
                0.0
            };
            println!(
                "winner:   miss {:.3}%, {} forwarded -> {:.0} fps ({:+.1}% vs baseline)",
                w.scene_miss_rate * 100.0,
                w.forwarded_frames,
                fps,
                gain
            );
        }
        None => println!(
            "no feasible candidate under the {:.1}% miss bound",
            miss_bound * 100.0
        ),
    }
    println!();
    println!(
        "{:>4} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>7} {:>7} {:>9}",
        "rank", "dx", "FD", "relax", "batch", "tyolo", "prec", "miss%", "fwd", "fps"
    );
    for (i, c) in report.ranked.iter().enumerate() {
        println!("{}", tune_row(i + 1, c));
    }

    let json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serialize tune: {}", e))?;
    std::fs::write(&out, json).map_err(|e| format!("cannot write {}: {}", out.display(), e))?;
    println!("tune report written to {}", out.display());

    if let Some(path) = bless {
        match (&report.config, &report.winner) {
            (Some(cfg), Some(w)) => {
                let snippet = BlessedConfig {
                    config: cfg,
                    thresholds: &w.thresholds,
                };
                let json = serde_json::to_string_pretty(&snippet)
                    .map_err(|e| format!("serialize blessed config: {}", e))?;
                std::fs::write(&path, json)
                    .map_err(|e| format!("cannot write {}: {}", path.display(), e))?;
                println!("blessed config written to {}", path.display());
            }
            _ => println!("--bless: no feasible winner, nothing blessed"),
        }
    }

    if want_drift {
        // Day→night vehicle: train on a static-illumination camera, then
        // evaluate on a dynamic twin (same seed, same scene texture) whose
        // illumination descends to the cycle trough across the eval clip —
        // the regime the statically-trained bank was never calibrated for.
        let mut day = if full {
            let mut c = workloads::jackson();
            c.seed = seed;
            c
        } else {
            workloads::test_tiny(target, tor, seed)
        };
        day.background = BackgroundKind::Static;
        let mut night = day.clone();
        night.name = format!("{}-drift", workload_name);
        night.background = BackgroundKind::Dynamic {
            period_frames: (2 * frames) as u64,
            amplitude: 0.8,
            drift_sigma: 0.0,
        };
        let mut cam_day = VideoStream::new(0, day);
        let training = cam_day.clip(train_frames);
        // identically-trained twins: each pipeline run consumes its bank
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let bank_static = FilterBank::build(&training, target, &bank_options(!full), &mut rng_a);
        let bank_recal = FilterBank::build(&training, target, &bank_options(!full), &mut rng_b);
        let mut cam_night = VideoStream::new(0, night);
        let eval = cam_night.clip(frames);
        let drift = DriftConfig {
            window: drift_window,
            ratio: drift_ratio,
            cooldown: drift_window * 2,
            ..DriftConfig::default()
        };
        let sys = FfsVaConfig::default().with_number_of_objects(n_obj);
        let ab = drift_ablation(&eval, bank_static, bank_recal, &sys, drift);
        println!();
        println!(
            "drift ablation ({} frames, day->night, window {}, ratio {:.1}):",
            ab.frames, drift_window, drift_ratio
        );
        println!(
            "  detections {}, sdd rebuilds {}, snm retunes {}",
            ab.detections, ab.sdd_rebuilds, ab.snm_retunes
        );
        println!(
            "  static pipeline: {} survivor(s), scene miss {:.2}%",
            ab.static_survivors,
            ab.static_miss_rate * 100.0
        );
        println!(
            "  recalibrating:   {} survivor(s), scene miss {:.2}%",
            ab.recal_survivors,
            ab.recal_miss_rate * 100.0
        );
        let json =
            serde_json::to_string_pretty(&ab).map_err(|e| format!("serialize drift: {}", e))?;
        std::fs::write(&drift_out, json)
            .map_err(|e| format!("cannot write {}: {}", drift_out.display(), e))?;
        println!("drift ablation written to {}", drift_out.display());
    }

    Ok(())
}

// ---------------------------------------------------------------------------
// serve

fn cmd_serve(args: &mut Args) -> Result<(), String> {
    let state_dir = PathBuf::from(args.req("state-dir")?);
    let addr = args.opt("addr")?.unwrap_or_else(|| "127.0.0.1:0".into());
    let instances: usize = args.parsed("instances", 2)?;
    let epoch_frames: u64 = args.parsed("epoch-frames", 150)?;
    let epoch_interval_ms: u64 = args.parsed("epoch-interval-ms", 0)?;
    let resume = args.flag("resume");
    if instances == 0 {
        return Err("--instances must be positive".into());
    }
    if epoch_frames == 0 {
        return Err("--epoch-frames must be positive".into());
    }
    let fault_plan = match args.opt("fault-plan")? {
        Some(spec) => {
            let plan =
                ClusterFaultPlan::parse(&spec).map_err(|e| format!("invalid --fault-plan: {e}"))?;
            plan.validate()
                .map_err(|e| format!("invalid --fault-plan: {e}"))?;
            Some(plan)
        }
        None => None,
    };
    let source_plan = match args.opt("source-faults")? {
        Some(spec) => {
            let plan = SourceFaultPlan::parse(&spec)
                .map_err(|e| format!("invalid --source-faults: {e}"))?;
            plan.validate()
                .map_err(|e| format!("invalid --source-faults: {e}"))?;
            Some(plan)
        }
        None => None,
    };
    args.ensure_empty()?;

    let cfg = ServeConfig {
        addr,
        state_dir: state_dir.clone(),
        instances,
        epoch_frames,
        fault_plan,
        source_plan,
        resume,
        epoch_interval: std::time::Duration::from_millis(epoch_interval_ms),
    };
    let daemon = Daemon::start(FfsVaConfig::default(), cfg).map_err(|e| format!("serve: {e}"))?;
    install_signal_drain();
    println!(
        "ffsva serve: listening on {} (state dir {}, {} instance(s), {} frames/epoch{})",
        daemon.local_addr(),
        state_dir.display(),
        instances,
        epoch_frames,
        if resume { ", resumed" } else { "" }
    );
    // supervisors scrape stdout for the address; don't sit on it
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let report = daemon.run().map_err(|e| format!("serve: {e}"))?;
    println!(
        "drained at epoch {} ({}): {} stream(s); manifest {}",
        report.epoch,
        report.reason,
        report.streams.len(),
        report.manifest
    );
    for st in &report.streams {
        println!(
            "  stream {}: {} at frame {}/{} ({} survivor(s){})",
            st.id,
            st.state,
            st.cursor,
            st.total_frames,
            st.survivors,
            if st.source_lost { ", source lost" } else { "" }
        );
    }
    Ok(())
}
