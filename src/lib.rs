//! `ffs-va` — facade crate for the FFS-VA reproduction (ICPP 2018).
//!
//! FFS-VA puts a pipelined cascade of cheap, stream-specialized filters —
//! SDD (frame difference, CPU) → SNM (per-stream CNN, GPU) → shared T-YOLO
//! (grid detector, GPU) — in front of an expensive reference model (YOLOv2)
//! so that only frames the user cares about pay full inference cost.
//!
//! This crate re-exports the workspace crates under stable paths:
//!
//! * [`tensor`] — pure-Rust CNN engine (inference + training).
//! * [`video`] — synthetic surveillance workload substrate with ground truth.
//! * [`models`] — the four cascade models and per-stream training (§4.1).
//! * [`sched`] — devices, feedback queues, batch policies, DES + threads.
//! * [`telemetry`] — lock-cheap pipeline metrics shared by both engines.
//! * [`core`] — the assembled system: engines, accuracy, instance management.
//!
//! Most programs only need the [`prelude`]:
//!
//! ```
//! use ffs_va::prelude::*;
//! use ffs_va::core::StreamThresholds;
//!
//! // a synthetic decision trace: every 10th frame is a target frame
//! let traces: Vec<FrameTrace> = (0..300)
//!     .map(|i| {
//!         let t = i % 10 == 0;
//!         FrameTrace {
//!             seq: i as u64,
//!             pts_ms: i as u64 * 33,
//!             sdd_distance: if t { 0.01 } else { 1e-4 },
//!             snm_prob: if t { 0.9 } else { 0.1 },
//!             tyolo_count: t as u16,
//!             reference_count: t as u16,
//!             truth_count: t as u16,
//!             truth_complete: t as u16,
//!         }
//!     })
//!     .collect();
//! let input = StreamInput {
//!     traces,
//!     thresholds: StreamThresholds { delta_diff: 1e-3, t_pre: 0.5, number_of_objects: 1 },
//! };
//! let r = Engine::new(FfsVaConfig::default(), Mode::Offline, vec![input]).run();
//! assert_eq!(r.total_frames, 300);
//! assert_eq!(r.stage_executed[3], 30); // only target frames reach YOLOv2
//! ```

pub use ffsva_core as core;
pub use ffsva_models as models;
pub use ffsva_sched as sched;
pub use ffsva_telemetry as telemetry;
pub use ffsva_tensor as tensor;
pub use ffsva_video as video;

/// Common imports: workload generation, cascade training, both engines.
pub mod prelude {
    pub use ffsva_core::{
        evaluate_accuracy, prepare_stream, prepare_stream_cached, run_baseline,
        run_multi_pipeline_rt, run_multi_pipeline_rt_faulted, run_multi_pipeline_rt_robust,
        run_pipeline_rt, tile_inputs, CheckpointSpec, Cluster, ClusterConfig, ClusterReport,
        Engine, FfsVaConfig, Mode, MultiRtResult, Precision, PrepareOptions, PreparedStream,
        RtResult, SimResult, StreamCheckpoint, StreamHealth, StreamInput, StreamOutcome,
        StreamThresholds, SurvivingFrame,
    };
    pub use ffsva_models::bank::{BankOptions, FilterBank, FrameTrace};
    pub use ffsva_models::snm::SnmModel;
    pub use ffsva_sched::{
        BatchPolicy, ClusterFaultPlan, DegradePolicy, FaultPlan, FaultStage, InstanceFault,
        StageFailure, StageFault,
    };
    pub use ffsva_telemetry::{PipelineDigest, Telemetry, TelemetrySnapshot};
    pub use ffsva_video::prelude::*;
}
