//! Smoke tests for the `ffsva` operator CLI: every subcommand runs on the
//! tiny synthetic workload, exits 0, and produces its documented artifact.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn ffsva(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ffsva"))
        .args(args)
        .output()
        .expect("failed to launch ffsva binary")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{} failed (status {:?})\nstdout:\n{}\nstderr:\n{}",
        what,
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Fresh scratch directory per test so parallel tests never collide.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ffsva_smoke_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn record(clip: &Path, frames: &str, seed: &str) {
    let out = ffsva(&[
        "record",
        "--workload",
        "test",
        "--out",
        clip.to_str().unwrap(),
        "--frames",
        frames,
        "--seed",
        seed,
    ]);
    assert_ok(&out, "record");
}

#[test]
fn record_writes_a_readable_ffsv1_clip() {
    let dir = Scratch::new("record");
    let clip = dir.path("clip.ffsv");
    record(&clip, "120", "5");

    // the documented artifact: an FFSV1 clip the library can read back
    let frames = ffs_va::video::read_clip(&clip).expect("clip must be readable");
    assert_eq!(frames.len(), 120);
}

#[test]
fn record_then_analyze_chain_produces_event_report() {
    let dir = Scratch::new("analyze");
    let clip = dir.path("clip.ffsv");
    let report = dir.path("report.json");
    record(&clip, "700", "42");

    let out = ffsva(&[
        "analyze",
        "--clip",
        clip.to_str().unwrap(),
        "--target",
        "car",
        "--train-frames",
        "400",
        "--fast",
        "--report",
        report.to_str().unwrap(),
    ]);
    assert_ok(&out, "analyze");
    assert!(stdout(&out).contains("analyzed 300 frames"));

    let json: serde_json::Value =
        serde_json::from_slice(&std::fs::read(&report).expect("report written"))
            .expect("report is valid JSON");
    assert_eq!(json["frames_analyzed"], 300);
    assert_eq!(json["target"], "car");
    assert!(json["events"].is_array());
    assert!(json["accuracy"]["total_frames"].is_number());
}

#[test]
fn train_profile_feeds_analyze() {
    let dir = Scratch::new("train");
    let clip = dir.path("clip.ffsv");
    let profile = dir.path("profile.json");
    let report = dir.path("report.json");
    record(&clip, "500", "9");

    let out = ffsva(&[
        "train",
        "--clip",
        clip.to_str().unwrap(),
        "--target",
        "car",
        "--train-frames",
        "400",
        "--fast",
        "--out",
        profile.to_str().unwrap(),
    ]);
    assert_ok(&out, "train");
    let json: serde_json::Value =
        serde_json::from_slice(&std::fs::read(&profile).expect("profile written"))
            .expect("profile is valid JSON");
    assert!(json["sdd"].is_object() && json["snm"].is_object());

    // a profile skips in-situ training, so the whole clip is analyzed
    let out = ffsva(&[
        "analyze",
        "--clip",
        clip.to_str().unwrap(),
        "--target",
        "car",
        "--profile",
        profile.to_str().unwrap(),
        "--report",
        report.to_str().unwrap(),
    ]);
    assert_ok(&out, "analyze --profile");
    assert!(stdout(&out).contains("analyzed 500 frames"));
    assert!(report.exists());
}

#[test]
fn simulate_writes_engine_result_json() {
    let dir = Scratch::new("simulate");
    let json_path = dir.path("result.json");
    let out = ffsva(&[
        "simulate",
        "--workload",
        "test",
        "--streams",
        "3",
        "--frames",
        "500",
        "--train-frames",
        "600",
        "--fast",
        "--mode",
        "offline",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_ok(&out, "simulate");
    assert!(stdout(&out).contains("simulated 3 stream(s)"));

    let json: serde_json::Value =
        serde_json::from_slice(&std::fs::read(&json_path).expect("result written"))
            .expect("result is valid JSON");
    assert_eq!(json["total_frames"], 1500);
    assert_eq!(json["num_streams"], 3);
}

/// Crash-safe checkpointing end to end: a run checkpointed and killed partway
/// (`--stop-after`), then resumed over the full input, must report the same
/// survivor sets and frame counters as one uninterrupted run.
#[test]
fn simulate_checkpoint_kill_resume_reproduces_uninterrupted_run() {
    let dir = Scratch::new("resume");
    let base = [
        "simulate",
        "--workload",
        "test",
        "--streams",
        "2",
        "--frames",
        "300",
        "--train-frames",
        "600",
        "--fast",
        "--mode",
        "offline",
    ];
    let run = |extra: &[&str]| {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(extra);
        ffsva(&args)
    };
    let read_json = |path: &Path| -> serde_json::Value {
        serde_json::from_slice(&std::fs::read(path).expect("result written"))
            .expect("result is valid JSON")
    };
    let frames_counters = |v: &serde_json::Value| -> std::collections::BTreeMap<String, u64> {
        v["telemetry"]["counters"]
            .as_object()
            .expect("telemetry counters present")
            .iter()
            .filter(|(k, _)| k.contains("frames_"))
            .map(|(k, c)| (k.clone(), c.as_u64().unwrap()))
            .collect()
    };

    // the uninterrupted reference run
    let full_json = dir.path("full.json");
    let ckpt_full = dir.path("ckpt_full");
    let out = run(&[
        "--checkpoint-dir",
        ckpt_full.to_str().unwrap(),
        "--json",
        full_json.to_str().unwrap(),
    ]);
    assert_ok(&out, "simulate --checkpoint-dir");
    assert!(
        stdout(&out).contains("checkpoint"),
        "no checkpoint summary:\n{}",
        stdout(&out)
    );
    assert!(
        std::fs::read_dir(&ckpt_full)
            .map(|d| d.count() > 0)
            .unwrap_or(false),
        "no checkpoint files written"
    );

    // the same run killed after 150 frames per stream...
    let ckpt_cut = dir.path("ckpt_cut");
    let out = run(&[
        "--checkpoint-dir",
        ckpt_cut.to_str().unwrap(),
        "--stop-after",
        "150",
    ]);
    assert_ok(&out, "simulate --stop-after");

    // ...then resumed over the full input
    let resumed_json = dir.path("resumed.json");
    let out = run(&[
        "--checkpoint-dir",
        ckpt_cut.to_str().unwrap(),
        "--resume",
        "--json",
        resumed_json.to_str().unwrap(),
    ]);
    assert_ok(&out, "simulate --resume");
    assert!(
        stdout(&out).contains("(resumed)"),
        "resume not reported:\n{}",
        stdout(&out)
    );

    let full = read_json(&full_json);
    let resumed = read_json(&resumed_json);
    assert_eq!(
        resumed["per_stream_survivors"], full["per_stream_survivors"],
        "kill+resume changed the survivor sets"
    );
    assert_eq!(
        frames_counters(&resumed),
        frames_counters(&full),
        "kill+resume changed the frame counters"
    );

    // --resume without a checkpoint dir is a usage error
    let out = run(&["--resume"]);
    assert!(!out.status.success());
}

#[test]
fn analyze_exports_telemetry_snapshot() {
    let dir = Scratch::new("telemetry");
    let clip = dir.path("clip.ffsv");
    let tele = dir.path("telemetry.json");
    record(&clip, "700", "42");

    let out = ffsva(&[
        "analyze",
        "--clip",
        clip.to_str().unwrap(),
        "--target",
        "car",
        "--train-frames",
        "400",
        "--fast",
        "--telemetry",
        tele.to_str().unwrap(),
    ]);
    assert_ok(&out, "analyze --telemetry");

    let json: serde_json::Value =
        serde_json::from_slice(&std::fs::read(&tele).expect("telemetry written"))
            .expect("telemetry is valid JSON");
    assert_eq!(json["schema_version"], 1);
    // the replayed DES run covers exactly the analyzed tail of the clip
    assert_eq!(json["snapshot"]["counters"]["pipeline.frames_in"], 300);
    assert!(json["digest"]["throughput_fps"].as_f64().unwrap() > 0.0);
    assert!(json["snapshot"]["histograms"]["latency.e2e_us"]["count"].is_number());
}

#[test]
fn bench_writes_gate_ready_report() {
    let dir = Scratch::new("bench");
    let bench = dir.path("BENCH.json");
    let out = ffsva(&[
        "bench",
        "--out",
        bench.to_str().unwrap(),
        "--streams",
        "2",
        "--frames",
        "200",
        "--train-frames",
        "500",
        "--seed",
        "5",
    ]);
    assert_ok(&out, "bench");
    let text = stdout(&out);
    assert!(text.contains("DES engine"), "missing DES table:\n{}", text);
    assert!(text.contains("RT engine"), "missing RT table:\n{}", text);

    let json: serde_json::Value =
        serde_json::from_slice(&std::fs::read(&bench).expect("BENCH.json written"))
            .expect("BENCH.json is valid JSON");
    assert_eq!(json["schema_version"], 1);
    for engine in ["des", "rt"] {
        let digest = &json[engine]["digest"];
        for stage in ["sdd", "snm", "tyolo", "reference"] {
            assert!(
                digest["stage_fps"][stage].is_number(),
                "{}: missing stage_fps.{}",
                engine,
                stage
            );
            assert!(digest["stage_drop_rate"][stage].is_number());
            assert!(digest["queue_depth_p99"][stage].is_number());
        }
        assert!(digest["throughput_fps"].as_f64().unwrap() > 0.0);
        assert!(digest["latency_e2e_p50_us"].is_number());
        assert!(digest["latency_e2e_p99_us"].is_number());
    }
    // the DES leg saw 2 streams x 200 frames
    let des_frames = json["des"]["digest"]["throughput_fps"].as_f64().unwrap()
        * json["des"]["elapsed_s"].as_f64().unwrap();
    assert!(
        (des_frames - 400.0).abs() < 1e-6,
        "DES leg counted {} frames, expected 400",
        des_frames
    );

    // acceptance (DESIGN.md §11): the pooled layout hosts at least 4x the
    // per-stream-thread stream count, reported as stage.pool.streams_sustained
    let sustained = json["stage"]["pool"]["streams_sustained"]
        .as_f64()
        .expect("stage.pool.streams_sustained missing");
    let threaded = json["stage"]["pool"]["streams_threaded"]
        .as_f64()
        .expect("stage.pool.streams_threaded missing");
    assert!(
        sustained >= 4.0 * threaded,
        "pools sustain {} streams, need >= 4x the threaded {}",
        sustained,
        threaded
    );
}

/// `tune` end to end: TUNE.json + blessed config + drift ablation written,
/// and a second identical invocation produces a byte-identical report.
#[test]
fn tune_writes_deterministic_report_blessed_config_and_drift_ablation() {
    let dir = Scratch::new("tune");
    let report = dir.path("TUNE.json");
    let blessed = dir.path("blessed.json");
    let drift = dir.path("DRIFT.json");
    let run = |report: &Path| {
        ffsva(&[
            "tune",
            "--out",
            report.to_str().unwrap(),
            "--bless",
            blessed.to_str().unwrap(),
            "--streams",
            "2",
            "--frames",
            "300",
            "--train-frames",
            "500",
            "--seed",
            "7",
            "--des-budget",
            "4",
            "--top",
            "3",
            "--drift-ablation",
            "--drift-out",
            drift.to_str().unwrap(),
            "--drift-window",
            "30",
        ])
    };
    let out = run(&report);
    assert_ok(&out, "tune");
    let text = stdout(&out);
    assert!(
        text.contains("winner:") || text.contains("no feasible candidate"),
        "no search outcome reported:\n{}",
        text
    );
    assert!(
        text.contains("drift ablation"),
        "drift leg missing:\n{}",
        text
    );

    let json: serde_json::Value =
        serde_json::from_slice(&std::fs::read(&report).expect("TUNE.json written"))
            .expect("TUNE.json is valid JSON");
    assert_eq!(json["schema_version"], 1);
    assert!(json["evaluated"].as_u64().unwrap() > 0);
    assert!(json["baseline"]["predicted_fps"].is_number());
    let ranked = json["ranked"].as_array().expect("ranked list");
    assert!(ranked.len() <= 3);
    if json["winner"].is_object() {
        // a feasible winner implies a blessable config + thresholds snippet
        assert!(
            json["winner"]["scene_miss_rate"].as_f64().unwrap()
                < json["miss_rate_bound"].as_f64().unwrap()
        );
        let snip: serde_json::Value =
            serde_json::from_slice(&std::fs::read(&blessed).expect("blessed config written"))
                .expect("blessed config is valid JSON");
        assert!(snip["config"]["filter_degree"].is_number());
        assert!(snip["thresholds"]["delta_diff"].is_number());
    }

    let dj: serde_json::Value =
        serde_json::from_slice(&std::fs::read(&drift).expect("DRIFT.json written"))
            .expect("DRIFT.json is valid JSON");
    assert_eq!(dj["frames"], 300);
    assert!(dj["static_miss_rate"].is_number() && dj["recal_miss_rate"].is_number());

    // determinism: same inputs → byte-identical report
    let report2 = dir.path("TUNE2.json");
    let out = run(&report2);
    assert_ok(&out, "tune (second run)");
    assert_eq!(
        std::fs::read(&report).unwrap(),
        std::fs::read(&report2).unwrap(),
        "tune reports differ between identical runs"
    );
}

#[test]
fn capacity_compares_cascade_against_baseline() {
    let out = ffsva(&[
        "capacity",
        "--workload",
        "test",
        "--frames",
        "300",
        "--train-frames",
        "600",
        "--fast",
        "--max-streams",
        "12",
    ]);
    assert_ok(&out, "capacity");
    let text = stdout(&out);
    assert!(
        text.contains("FFS-VA"),
        "missing cascade capacity line:\n{}",
        text
    );
    assert!(
        text.contains("baseline"),
        "missing baseline line:\n{}",
        text
    );
}

#[test]
fn capacity_pooled_reports_thread_ceiling() {
    let out = ffsva(&[
        "capacity",
        "--workload",
        "test",
        "--frames",
        "300",
        "--train-frames",
        "600",
        "--fast",
        "--max-streams",
        "12",
        "--pooled",
    ]);
    assert_ok(&out, "capacity --pooled");
    let text = stdout(&out);
    assert!(
        text.contains("thread ceiling"),
        "missing thread-ceiling section:\n{}",
        text
    );
    assert!(
        text.contains("sharded pools"),
        "missing pooled ceiling line:\n{}",
        text
    );
    // the ratio line carries the acceptance headline: >= 4x more streams
    let ratio = text
        .lines()
        .find_map(|l| {
            l.trim()
                .strip_prefix("pooling hosts ")?
                .split('x')
                .next()?
                .parse::<f64>()
                .ok()
        })
        .expect("missing pooling ratio line");
    assert!(ratio >= 4.0, "pooled/threaded ratio {} < 4x", ratio);
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let out = ffsva(&["frobnicate"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // missing required option
    let out = ffsva(&["record", "--workload", "test"]);
    assert!(!out.status.success());

    // unrecognized trailing option must be rejected, not ignored
    let dir = Scratch::new("badargs");
    let clip = dir.path("clip.ffsv");
    let out = ffsva(&[
        "record",
        "--workload",
        "test",
        "--out",
        clip.to_str().unwrap(),
        "--frames",
        "10",
        "--bogus",
        "1",
    ]);
    assert!(!out.status.success());
}
