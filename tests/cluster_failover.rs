//! Cluster failover battery (DESIGN.md §13): the control plane must recover
//! a crashed instance's streams on the survivors with **bit-identical**
//! survivor sets — the checkpoint-riding re-forward changes where a stream
//! runs, never what it reports — and must degrade to bounded rejection
//! (never a hang) when no instance can take the work.

use ffs_va::core::{Engine, FfsVaConfig, Mode, StreamInput, StreamThresholds};
use ffs_va::prelude::{
    Cluster, ClusterConfig, ClusterFaultPlan, ClusterReport, FrameTrace, StreamOutcome,
};
use std::path::PathBuf;

/// Synthetic decision trace: every `target_every`-th frame is a target.
fn synthetic_input(n: usize, target_every: usize) -> StreamInput {
    let traces = (0..n)
        .map(|i| {
            let target = target_every > 0 && i % target_every == 0;
            FrameTrace {
                seq: i as u64,
                pts_ms: (i as u64) * 33,
                sdd_distance: if target { 0.01 } else { 0.0001 },
                snm_prob: if target { 0.9 } else { 0.05 },
                tyolo_count: u16::from(target),
                reference_count: u16::from(target),
                truth_count: u16::from(target),
                truth_complete: u16::from(target),
            }
        })
        .collect();
    StreamInput {
        traces,
        thresholds: StreamThresholds {
            delta_diff: 0.001,
            t_pre: 0.5,
            number_of_objects: 1,
        },
    }
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffsva_failover_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_cluster(
    name: &str,
    instances: usize,
    offers: Vec<StreamInput>,
    plan: Option<&ClusterFaultPlan>,
) -> ClusterReport {
    let root = tmp_root(name);
    let cfg = ClusterConfig::new(instances, &root).with_epoch_frames(100);
    let mut cluster = Cluster::new(FfsVaConfig::default(), cfg);
    if let Some(p) = plan {
        cluster = cluster.with_fault_plan(p);
    }
    let report = cluster.run(offers).expect("cluster run");
    let _ = std::fs::remove_dir_all(&root);
    report
}

/// THE acceptance invariant: `instance0:crash@N` on a 3-instance fleet
/// re-forwards the dead instance's streams onto the survivors, and every
/// stream's survivor set is bit-identical to (a) the same fleet run without
/// the fault and (b) a monolithic unmigrated engine run.
#[test]
fn crashed_instance_streams_recover_bit_identical() {
    let sys = FfsVaConfig::default();
    let inputs: Vec<StreamInput> = (0..6).map(|_| synthetic_input(300, 8)).collect();

    // reference 1: one engine, no cluster, no faults
    let monolithic = Engine::new(sys, Mode::Online, inputs.clone())
        .run()
        .per_stream_survivors;
    // reference 2: the same fleet with nothing injected
    let healthy = run_cluster("healthy", 3, inputs.clone(), None);
    // the measured run: instance 0 dies at the epoch covering frame 200,
    // after its streams checkpointed two full epochs
    let plan = ClusterFaultPlan::parse("instance0:crash@200").expect("plan");
    let crashed = run_cluster("crash", 3, inputs, Some(&plan));

    assert_eq!(
        healthy.completed(),
        6,
        "healthy fleet: {:?}",
        healthy.outcomes
    );
    assert_eq!(
        crashed.completed(),
        6,
        "crashed fleet: {:?}",
        crashed.outcomes
    );
    for s in 0..6 {
        let expected = &monolithic[s];
        assert!(!expected.is_empty(), "workload must produce survivors");
        assert_eq!(
            healthy.survivors(s).unwrap(),
            expected.as_slice(),
            "stream {s}: healthy fleet drifted from the monolithic run"
        );
        assert_eq!(
            crashed.survivors(s).unwrap(),
            expected.as_slice(),
            "stream {s}: migrated survivors are not bit-identical"
        );
    }

    // the fault actually fired and the recovery actually rode checkpoints
    assert_eq!(crashed.alive, vec![false, true, true]);
    assert_eq!(crashed.telemetry.counter("cluster.instances_crashed"), 1);
    assert_eq!(crashed.telemetry.counter("cluster.reforwards"), 2);
    assert_eq!(crashed.telemetry.counter("cluster.recoveries"), 2);
    assert_eq!(crashed.telemetry.counter("cluster.reforward_given_up"), 0);
    assert!(crashed.reforward_latency_ms() >= 0.0);
    // nothing re-forwards in a healthy fleet
    assert_eq!(healthy.telemetry.counter("cluster.reforwards"), 0);
    assert!(healthy.alive.iter().all(|&a| a));
}

/// When every instance is overloaded (a persistent slow-down on the whole
/// fleet), shed streams find no placement target: each burns its bounded
/// retry budget and is `Rejected` with accounting — the loop terminates far
/// below the epoch cap instead of hanging or ping-ponging forever.
#[test]
fn all_overloaded_fleet_rejects_boundedly() {
    // +60s per epoch dwarfs the 3s real-time slack: every epoch on every
    // instance is non-realtime from frame 0 on
    let plan =
        ClusterFaultPlan::parse("instance0:slow@0+60000ms,instance1:slow@0+60000ms").expect("plan");
    let offers: Vec<StreamInput> = (0..4).map(|_| synthetic_input(300, 8)).collect();

    let root = tmp_root("slowfleet");
    let cfg = ClusterConfig::new(2, &root)
        .with_epoch_frames(100)
        .with_max_epochs(100);
    let report = Cluster::new(FfsVaConfig::default(), cfg)
        .with_fault_plan(&plan)
        .run(offers)
        .expect("cluster run");
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(report.completed(), 0, "outcomes: {:?}", report.outcomes);
    assert_eq!(report.rejected(), 4, "outcomes: {:?}", report.outcomes);
    for outcome in &report.outcomes {
        match outcome {
            StreamOutcome::Rejected { retries, .. } => {
                assert!(
                    (1..=4).contains(retries),
                    "retry budget must be burned, not skipped or exceeded: {retries}"
                );
            }
            other => panic!("expected bounded rejection, got {other:?}"),
        }
    }
    assert_eq!(report.telemetry.counter("cluster.reforward_given_up"), 4);
    assert!(
        report.epochs < 50,
        "bounded degradation must terminate early, ran {} epochs",
        report.epochs
    );
}
