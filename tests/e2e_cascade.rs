//! Cross-crate integration tests (DESIGN.md §6, integration tier): video
//! generation → cascade training → both execution engines, end to end.
//!
//! The expensive step — generating pixels and training a real SNM — runs
//! once per binary behind a `OnceLock` and is shared by every test here.

use ffs_va::core::accuracy::cascade_pass;
use ffs_va::core::instance::{AdmissionController, Placement};
use ffs_va::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

fn quick_bank_opts() -> BankOptions {
    BankOptions {
        snm: ffs_va::models::snm::SnmTrainOptions {
            epochs: 10,
            batch_size: 16,
            lr: 0.08,
            train_frac: 0.7,
            max_samples: 300,
            restarts: 2,
        },
        ..Default::default()
    }
}

fn quick_prepare_opts() -> PrepareOptions {
    PrepareOptions {
        train_frames: 1200,
        eval_frames: 1500,
        bank: quick_bank_opts(),
        ..Default::default()
    }
}

/// One fully prepared `test` workload stream, shared across tests.
fn prepared() -> &'static PreparedStream {
    static PREPARED: OnceLock<PreparedStream> = OnceLock::new();
    PREPARED.get_or_init(|| {
        prepare_stream(
            workloads::test_tiny(ObjectClass::Car, 0.3, 7),
            &quick_prepare_opts(),
        )
    })
}

/// End-to-end offline accuracy: the baseline (YOLOv2 over every frame) sees
/// 100 % of target scenes; the cascade must stay within 2 % of it on the
/// `test` workload preset (the paper's "< 2 %" headline, §5.3).
#[test]
fn offline_cascade_accuracy_within_two_percent_of_baseline() {
    let ps = prepared();
    let sys = FfsVaConfig::default();
    let th = ps.thresholds(&sys);
    let rep = evaluate_accuracy(&ps.traces, &th);

    assert!(rep.significant_scenes > 0, "workload produced no scenes");
    assert!(
        rep.scene_miss_rate <= 0.02,
        "cascade misses {:.1}% of significant scenes ({} of {}), baseline misses 0%",
        100.0 * rep.scene_miss_rate,
        rep.significant_scenes - rep.significant_scenes_detected,
        rep.significant_scenes
    );
    // the cascade must actually filter, not just pass everything through
    assert!(
        rep.forwarded_frames < rep.total_frames,
        "cascade forwarded every frame"
    );
}

/// DES↔RT cross-engine conformance: under identical thresholds the
/// discrete-event engine and the threaded real-model engine must agree on
/// the exact set of surviving frames — the survivor set is a pure function
/// of (trace, thresholds), never of scheduling.
#[test]
fn des_and_rt_engines_agree_on_survivor_set() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let sys = FfsVaConfig::default();
    let mut camera = VideoStream::new(0, workloads::test_tiny(ObjectClass::Car, 0.3, 42));
    let training = camera.clip(1200);
    let mut bank = FilterBank::build(&training, ObjectClass::Car, &quick_bank_opts(), &mut rng);
    let clip = camera.clip(400);

    let th = StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(sys.filter_degree),
        number_of_objects: sys.number_of_objects,
    };
    let traces = bank.trace_clip(&clip);

    // Discrete-event engine: survivors are frames whose timeline reached the
    // reference stage.
    let input = StreamInput {
        traces: traces.clone(),
        thresholds: th,
    };
    let (sim, timelines) = Engine::new(sys, Mode::Offline, vec![input])
        .with_tracing()
        .run_traced();
    let des_survivors: Vec<u64> = timelines[0]
        .iter()
        .zip(&traces)
        .filter(|(tl, _)| tl.dropped_at.is_none() && !tl.reference_done_us.is_nan())
        .map(|(_, tr)| tr.seq)
        .collect();

    // Threaded engine on the *same* bank (moved in), over the same clip.
    let rt = run_pipeline_rt(clip, bank, &sys);
    let rt_survivors: Vec<u64> = rt.survivors.iter().map(|s| s.seq).collect();

    assert_eq!(sim.total_frames, rt.total_frames);
    assert!(
        !des_survivors.is_empty(),
        "degenerate run: nothing survived"
    );
    assert_eq!(
        des_survivors, rt_survivors,
        "DES and RT engines disagree on the survivor set"
    );
    // and both match the pure trace math
    let expected: Vec<u64> = traces
        .iter()
        .filter(|tr| cascade_pass(tr, &th))
        .map(|tr| tr.seq)
        .collect();
    assert_eq!(des_survivors, expected);
}

/// DES↔RT telemetry conformance: for the same fixed-seed workload, both
/// engines must register the *same* named series (engine-private `des.` /
/// `rt.` prefixes aside) and report bit-identical values for every
/// deterministic frame-count series. Time-valued series (latencies, blocked
/// time, queue depths) legitimately differ — virtual vs. wall clock — but
/// must exist under the same names so dashboards and the bench gate read
/// either engine interchangeably.
#[test]
fn des_and_rt_engines_emit_conformant_telemetry() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let sys = FfsVaConfig::default();
    let mut camera = VideoStream::new(0, workloads::test_tiny(ObjectClass::Car, 0.3, 42));
    let training = camera.clip(1200);
    let mut bank = FilterBank::build(&training, ObjectClass::Car, &quick_bank_opts(), &mut rng);
    let clip = camera.clip(400);

    let th = StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(sys.filter_degree),
        number_of_objects: sys.number_of_objects,
    };
    let traces = bank.trace_clip(&clip);
    let sim = Engine::new(
        sys,
        Mode::Offline,
        vec![StreamInput {
            traces,
            thresholds: th,
        }],
    )
    .run();
    let rt = run_pipeline_rt(clip, bank, &sys);

    // Same metric namespace from both engines.
    let des_names = sim.telemetry.conformant_names();
    let rt_names = rt.telemetry.conformant_names();
    assert!(!des_names.is_empty(), "DES engine registered no series");
    assert_eq!(
        des_names, rt_names,
        "DES and RT engines disagree on the telemetry namespace"
    );

    // Identical values for every deterministic frame-count series.
    let des_frames = sim.telemetry.frames_counters();
    let rt_frames = rt.telemetry.frames_counters();
    assert!(
        des_frames.len() > 12,
        "conformance domain implausibly small: {:?}",
        des_frames.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        des_frames, rt_frames,
        "DES and RT engines disagree on frame accounting"
    );

    // Spot-check the domain is anchored to this run, not vacuously equal.
    assert_eq!(sim.telemetry.counter("pipeline.frames_in"), 400);
    assert_eq!(
        sim.telemetry.stage_total("reference", "frames_out"),
        rt.survivors.len() as u64
    );

    // Both latency histograms exist and saw every disposed frame.
    for snap in [&sim.telemetry, &rt.telemetry] {
        let e2e = snap
            .histograms
            .get("latency.e2e_us")
            .expect("latency.e2e_us registered");
        assert_eq!(e2e.count, 400, "e2e latency must cover every frame");
    }
}

/// Faulted DES↔RT conformance: the same deterministic [`FaultPlan`] — one
/// stream's SNM panicking persistently, the other stream losing one SDD
/// push — must produce bit-identical per-stage frame counters (including
/// `frames_quarantined`) in both engines. Faults are keyed on frame seq and
/// queues are FIFO, so the disposition of every frame is schedule-invariant.
#[test]
fn des_and_rt_engines_agree_on_faulted_frame_accounting() {
    use ffs_va::prelude::{FaultPlan, FaultStage, StageFault};

    let sys = FfsVaConfig {
        restart_budget: 1,
        restart_backoff_ms: 1,
        ..FfsVaConfig::default()
    };
    let plan = FaultPlan::new()
        .with(1, FaultStage::Snm, StageFault::PanicAtFrame(50))
        .with(
            0,
            FaultStage::Sdd,
            StageFault::FailNextPush { at_frame: 30 },
        );

    let mut inputs = Vec::new();
    let mut rt_streams = Vec::new();
    for seed in [41u64, 42] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut camera = VideoStream::new(
            seed as u32,
            workloads::test_tiny(ObjectClass::Car, 0.3, seed),
        );
        let training = camera.clip(1200);
        let mut bank = FilterBank::build(&training, ObjectClass::Car, &quick_bank_opts(), &mut rng);
        let clip = camera.clip(400);
        let th = StreamThresholds {
            delta_diff: bank.sdd.delta_diff,
            t_pre: bank.snm.t_pre(sys.filter_degree),
            number_of_objects: sys.number_of_objects,
        };
        inputs.push(StreamInput {
            traces: bank.trace_clip(&clip),
            thresholds: th,
        });
        rt_streams.push((clip, bank));
    }

    let des = Engine::new(sys, Mode::Offline, inputs)
        .with_fault_plan(&plan)
        .run();
    let rt = run_multi_pipeline_rt_faulted(rt_streams, &sys, &plan);

    // identical namespaces, identical frame accounting — quarantine included
    assert_eq!(
        des.telemetry.conformant_names(),
        rt.telemetry.conformant_names(),
        "faulted runs diverge on the telemetry namespace"
    );
    assert_eq!(
        des.telemetry.frames_counters(),
        rt.telemetry.frames_counters(),
        "faulted DES and RT runs disagree on frame accounting"
    );
    // and both attribute the same quarantine totals to the same stream
    assert_eq!(des.per_stream_quarantined.len(), 2);
    assert_eq!(des.per_stream_quarantined[0], 0);
    assert!(des.per_stream_quarantined[1] > 0);
    for s in 0..2 {
        assert_eq!(
            des.per_stream_quarantined[s], rt.stream_health[s].frames_quarantined,
            "stream {s} quarantine totals diverge"
        );
    }
    assert!(rt.stream_health[1].quarantined);
    assert!(rt.stream_health[0].healthy());
}

/// Determinism under fixed seeds: preparing the same stream twice yields
/// bit-identical traces and thresholds, and the DES engine reproduces the
/// same schedule.
#[test]
fn fixed_seeds_make_runs_deterministic() {
    let opts = PrepareOptions {
        train_frames: 800,
        eval_frames: 400,
        bank: quick_bank_opts(),
        ..Default::default()
    };
    let a = prepare_stream(workloads::test_tiny(ObjectClass::Car, 0.35, 11), &opts);
    let b = prepare_stream(workloads::test_tiny(ObjectClass::Car, 0.35, 11), &opts);

    assert_eq!(a.delta_diff.to_bits(), b.delta_diff.to_bits());
    assert_eq!(a.c_low.to_bits(), b.c_low.to_bits());
    assert_eq!(a.c_high.to_bits(), b.c_high.to_bits());
    assert_eq!(a.traces.len(), b.traces.len());
    for (ta, tb) in a.traces.iter().zip(&b.traces) {
        assert_eq!(ta.seq, tb.seq);
        assert_eq!(ta.sdd_distance.to_bits(), tb.sdd_distance.to_bits());
        assert_eq!(ta.snm_prob.to_bits(), tb.snm_prob.to_bits());
        assert_eq!(ta.tyolo_count, tb.tyolo_count);
        assert_eq!(ta.reference_count, tb.reference_count);
    }

    let sys = FfsVaConfig::default();
    let r1 = Engine::new(sys, Mode::Online, vec![a.input(&sys)]).run();
    let r2 = Engine::new(sys, Mode::Online, vec![b.input(&sys)]).run();
    assert_eq!(r1.makespan_us.to_bits(), r2.makespan_us.to_bits());
    assert_eq!(r1.stage_executed, r2.stage_executed);
    assert_eq!(r1.stage_dropped, r2.stage_dropped);
    assert_eq!(r1.throughput_fps.to_bits(), r2.throughput_fps.to_bits());
}

/// Offline speedup: with a real trained cascade at moderate TOR, the
/// filtering system finishes the clip faster than YOLOv2-on-2-GPUs (the
/// paper reports 3× at TOR ≈ 0.1; at TOR 0.3 the margin is smaller but the
/// cascade must still win).
#[test]
fn offline_cascade_beats_baseline_throughput() {
    let ps = prepared();
    let sys = FfsVaConfig::default();
    let r = Engine::new(sys, Mode::Offline, vec![ps.input(&sys)]).run();
    let b = run_baseline(1, ps.traces.len(), Mode::Offline, 30, 2);
    assert!(
        r.throughput_fps > 1.2 * b.throughput_fps,
        "cascade {:.1} FPS vs baseline {:.1} FPS",
        r.throughput_fps,
        b.throughput_fps
    );
    // the cascade cut the reference load: most frames never reach YOLOv2
    assert!(r.stage_executed[3] < r.total_frames);
}

/// Online admission over real traces: the controller admits streams while
/// the shared T-YOLO shows spare capacity, refuses once the instance would
/// miss real time, and the accepted load stays real-time.
#[test]
fn admission_fills_instance_then_rejects_on_real_traces() {
    let ps = prepared();
    let sys = FfsVaConfig::default();
    let mut ctl = AdmissionController::new(sys, 1);
    let mut admitted = 0usize;
    let mut rejected = false;
    for i in 0..40 {
        match ctl.try_admit(ps.input_rotated(&sys, i * 97)) {
            Placement::Admitted { instance } => {
                assert_eq!(instance, 0);
                admitted += 1;
            }
            Placement::Rejected => {
                rejected = true;
                break;
            }
        }
    }
    assert!(rejected, "instance never saturated within 40 streams");
    assert!(admitted >= 2, "implausibly low capacity: {}", admitted);

    let load = ctl.into_instances().remove(0);
    let r = Engine::new(sys, Mode::Online, load).run();
    assert!(r.realtime(sys.online_fps), "admitted load is not real-time");
}

/// FFSV1 round trip feeds the cascade: a recorded clip read back from disk
/// produces bit-identical decision traces — storage is lossless end to end.
#[test]
fn ffsv1_clip_roundtrip_preserves_cascade_decisions() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut camera = VideoStream::new(0, workloads::test_tiny(ObjectClass::Car, 0.4, 23));
    let training = camera.clip(900);
    let mut bank = FilterBank::build(&training, ObjectClass::Car, &quick_bank_opts(), &mut rng);
    let clip = camera.clip(200);

    let dir = std::env::temp_dir().join("ffsva_e2e_roundtrip");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("clip.ffsv");
    ffs_va::video::write_clip(&path, &clip, 30).expect("write clip");
    let restored = ffs_va::video::read_clip(&path).expect("read clip");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(restored.len(), clip.len());
    let original = bank.trace_clip(&clip);
    let reread = bank.trace_clip(&restored);
    for (a, b) in original.iter().zip(&reread) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.pts_ms, b.pts_ms);
        assert_eq!(a.sdd_distance.to_bits(), b.sdd_distance.to_bits());
        assert_eq!(a.snm_prob.to_bits(), b.snm_prob.to_bits());
        assert_eq!(a.tyolo_count, b.tyolo_count);
        assert_eq!(a.truth_count, b.truth_count);
    }
}
