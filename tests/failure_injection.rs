//! Failure-injection tests (DESIGN.md §6): the feedback mechanism under a
//! stalled stage, overload detection, stream re-forwarding, and degenerate
//! configurations.

use ffs_va::core::instance::{
    balance_instances_from, has_spare_capacity, is_overloaded, AdmissionController, Placement,
};
use ffs_va::core::{Engine, FfsVaConfig, Mode, StreamInput, StreamThresholds};
use ffs_va::models::snm::SnmTrainOptions;
use ffs_va::prelude::{
    run_multi_pipeline_rt, run_multi_pipeline_rt_faulted, BankOptions, BatchPolicy, DegradePolicy,
    FaultPlan, FaultStage, FilterBank, FrameTrace, LabeledFrame, ObjectClass, SourceFault,
    SourceFaultPlan, StageFault, VideoStream,
};
use ffs_va::sched::{spawn_batch_stage, spawn_filter_stage, FeedbackQueue};
use ffs_va::video::workloads;
use proptest::prelude::*;
use rand::SeedableRng;
use std::time::Duration;

/// Synthetic decision trace: every `target_every`-th frame is a target.
fn synthetic_input(n: usize, target_every: usize) -> StreamInput {
    let traces = (0..n)
        .map(|i| {
            let target = target_every > 0 && i % target_every == 0;
            FrameTrace {
                seq: i as u64,
                pts_ms: (i as u64) * 33,
                sdd_distance: if target { 0.01 } else { 0.0001 },
                snm_prob: if target { 0.9 } else { 0.05 },
                tyolo_count: u16::from(target),
                reference_count: u16::from(target),
                truth_count: u16::from(target),
                truth_complete: u16::from(target),
            }
        })
        .collect();
    StreamInput {
        traces,
        thresholds: StreamThresholds {
            delta_diff: 0.001,
            t_pre: 0.5,
            number_of_objects: 1,
        },
    }
}

/// Failure injection #1: a deliberately stalled T-YOLO stage. The bounded
/// feedback queues must cap upstream growth and propagate backpressure all
/// the way to the source — the paper's feedback mechanism (§4.3.1) — and no
/// frame may be lost or reordered once the stall is released.
#[test]
fn stalled_tyolo_stage_bounds_upstream_queues_via_feedback() {
    let cfg = FfsVaConfig::default();
    let q_src: FeedbackQueue<u64> = FeedbackQueue::new(cfg.sdd_queue_depth);
    let q_snm: FeedbackQueue<u64> = FeedbackQueue::new(cfg.snm_queue_depth);
    let q_tyolo: FeedbackQueue<u64> = FeedbackQueue::new(cfg.tyolo_queue_depth);
    let q_ref: FeedbackQueue<u64> = FeedbackQueue::new(1024);

    let h_sdd = spawn_filter_stage("sdd", q_src.clone(), q_snm.clone(), Some);
    let h_snm = spawn_batch_stage(
        "snm",
        q_snm.clone(),
        q_tyolo.clone(),
        BatchPolicy::Dynamic { size: 10 },
        |batch: Vec<u64>| batch,
    );
    // the injected fault: T-YOLO takes 20 ms per frame instead of ~5 ms
    let h_tyolo = spawn_filter_stage("tyolo-stalled", q_tyolo.clone(), q_ref.clone(), |x: u64| {
        std::thread::sleep(Duration::from_millis(20));
        Some(x)
    });

    // A 30-FPS camera worth of frames offered as fast as possible.
    let q_in = q_src.clone();
    let producer = std::thread::spawn(move || {
        for i in 0..500u64 {
            if q_in.push(i).is_err() {
                break;
            }
        }
    });

    // Let the stall develop.
    std::thread::sleep(Duration::from_millis(400));

    // Bounded growth at every stage, and feedback reached the source: the
    // producer is blocked long before its 500 frames enter the pipeline.
    assert!(q_src.stats().max_depth <= cfg.sdd_queue_depth);
    assert!(q_snm.stats().max_depth <= cfg.snm_queue_depth);
    assert!(q_tyolo.stats().max_depth <= cfg.tyolo_queue_depth);
    let entered = q_src.stats().pushed;
    assert!(
        entered < 200,
        "feedback failed: {} frames entered a stalled pipeline",
        entered
    );
    assert!(
        q_src.stats().backpressure_events > 0,
        "producer never hit backpressure"
    );

    // Release: stop offering frames; everything in flight must drain through
    // the slow stage without loss or reordering.
    q_src.close();
    producer.join().unwrap();
    let mut received = Vec::new();
    while let Some(v) = q_ref.pop() {
        received.push(v);
    }
    h_sdd.join().unwrap();
    h_snm.join().unwrap();
    h_tyolo.join().unwrap();

    let entered_total = q_src.stats().pushed;
    assert_eq!(
        received.len() as u64,
        entered_total,
        "frames lost in the stalled pipeline"
    );
    assert_eq!(
        received,
        (0..entered_total).collect::<Vec<u64>>(),
        "stall reordered frames"
    );
}

/// Failure injection #2: a burst of cameras lands on one instance and
/// overloads it. Re-forwarding (§4.3.1) must move streams to instances with
/// spare capacity until every instance is real-time again.
#[test]
fn stream_overload_triggers_reforwarding_to_spare_instances() {
    let cfg = FfsVaConfig::default();
    let streams: Vec<StreamInput> = (0..12).map(|_| synthetic_input(300, 2)).collect();

    // Everything on instance 0 — provably overloaded on its own.
    let all_on_zero = vec![0usize; streams.len()];
    let packed: Vec<StreamInput> = streams.clone();
    let r0 = Engine::new(cfg, Mode::Online, packed).run();
    assert!(
        is_overloaded(&r0, &cfg),
        "12 heavy streams should overload one instance"
    );

    let out = balance_instances_from(&cfg, &streams, 3, 48, all_on_zero);
    assert!(
        out.reforwarded >= 2,
        "only {} streams re-forwarded",
        out.reforwarded
    );
    assert!(
        out.all_realtime,
        "assignment {:?} not real-time",
        out.assignment
    );
    let still_on_zero = out.assignment.iter().filter(|&&a| a == 0).count();
    assert!(
        still_on_zero < streams.len(),
        "nothing left the overloaded instance"
    );
    // the relieved instance really is healthy now
    let relieved: Vec<StreamInput> = out
        .assignment
        .iter()
        .enumerate()
        .filter(|(_, &a)| a == 0)
        .map(|(i, _)| streams[i].clone())
        .collect();
    let r1 = Engine::new(cfg, Mode::Online, relieved).run();
    assert!(!is_overloaded(&r1, &cfg));
}

/// Failure injection #3: offered load beyond capacity must be *refused* at
/// admission, never silently degraded — and the overload signals must read
/// consistently.
#[test]
fn admission_refuses_streams_beyond_capacity() {
    let cfg = FfsVaConfig::default();

    let light = Engine::new(cfg, Mode::Online, vec![synthetic_input(300, 10)]).run();
    assert!(has_spare_capacity(&light, &cfg));
    assert!(!is_overloaded(&light, &cfg));

    let mut ctl = AdmissionController::new(cfg, 1);
    let mut admitted = 0usize;
    let mut rejected = false;
    for _ in 0..40 {
        match ctl.try_admit(synthetic_input(300, 2)) {
            Placement::Admitted { .. } => admitted += 1,
            Placement::Rejected => {
                rejected = true;
                break;
            }
        }
    }
    assert!(rejected, "controller admitted 40 heavy streams");
    assert!(admitted >= 1);
    // what was admitted still runs in real time
    let load = ctl.into_instances().remove(0);
    let r = Engine::new(cfg, Mode::Online, load).run();
    assert!(r.realtime(cfg.online_fps));
}

/// Degenerate configuration: minimal queue depths and an awkward static
/// batch size must not deadlock or drop frames — every frame is disposed
/// exactly once (the §6 "degenerate batch sizes, minimal queue depths"
/// clause).
#[test]
fn degenerate_config_minimal_queues_still_drains_every_frame() {
    let cfg = FfsVaConfig {
        sdd_queue_depth: 1,
        snm_queue_depth: 1,
        tyolo_queue_depth: 1,
        reference_queue_depth: 1,
        batch_policy: BatchPolicy::Static { size: 7 },
        ..FfsVaConfig::default()
    };
    let n = 123usize;
    let r = Engine::new(cfg, Mode::Offline, vec![synthetic_input(n, 3)]).run();
    assert_eq!(r.total_frames, n as u64);
    assert_eq!(r.stage_executed[0], n as u64, "SDD must see every frame");
    // disposition conservation: executed by reference + dropped somewhere = all
    let dropped: u64 = r.stage_dropped.iter().sum();
    assert_eq!(r.stage_executed[3] + dropped, n as u64);
    // every 3rd frame passes the whole cascade: 0, 3, …, 120 → 41 frames
    assert_eq!(r.stage_executed[3], 41);
}

// ---------------------------------------------------------------------------
// supervision & graceful degradation (DESIGN.md §7)

fn fast_bank_opts() -> BankOptions {
    BankOptions {
        snm: SnmTrainOptions {
            epochs: 10,
            batch_size: 16,
            lr: 0.08,
            train_frac: 0.7,
            max_samples: 300,
            restarts: 2,
        },
        ..Default::default()
    }
}

/// Two independent streams with real trained banks. Rebuilding from the same
/// seeds yields bit-identical banks, so two calls produce runs whose cascade
/// decisions can be compared frame for frame.
fn two_rt_streams() -> Vec<(Vec<LabeledFrame>, FilterBank)> {
    let mut out = Vec::new();
    for seed in [41u64, 42] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
        let vcfg = workloads::test_tiny(ObjectClass::Car, 0.3, seed);
        let mut cam = VideoStream::new(seed as u32, vcfg);
        let training = cam.clip(1200);
        let bank = FilterBank::build(&training, ObjectClass::Car, &fast_bank_opts(), &mut rng);
        let clip = cam.clip(400);
        out.push((clip, bank));
    }
    out
}

/// Failure injection #4 (supervision tentpole): one stream's SNM panics
/// persistently at frame 50. The supervisor must restart it, exhaust the
/// budget, quarantine that stream — and the sibling stream's survivor set
/// must be bit-identical to an unfaulted run, with every offered frame of
/// the quarantined stream disposed exactly once.
#[test]
fn snm_panic_quarantines_stream_and_isolates_siblings() {
    let cfg = FfsVaConfig {
        restart_budget: 1,
        restart_backoff_ms: 1,
        ..FfsVaConfig::default()
    };
    let clean = run_multi_pipeline_rt(two_rt_streams(), &cfg);
    assert!(clean.stream_health.iter().all(|h| h.healthy()));

    let plan = FaultPlan::new().with(1, FaultStage::Snm, StageFault::PanicAtFrame(50));
    let faulted = run_multi_pipeline_rt_faulted(two_rt_streams(), &cfg, &plan);

    // the faulted stream is quarantined, after burning its restart budget
    assert!(
        faulted.stream_health[0].healthy(),
        "sibling was quarantined"
    );
    assert!(faulted.stream_health[1].quarantined);
    assert_eq!(
        faulted.stream_health[1].failed_stage.as_deref(),
        Some("snm")
    );
    assert_eq!(faulted.stream_health[1].restarts, 1);
    let snap = &faulted.telemetry;
    assert_eq!(snap.counter("rt.supervisor.stream1.snm.restarts"), 1);
    assert_eq!(snap.counter("rt.supervisor.stream1.snm.give_ups"), 1);
    assert_eq!(snap.counter("rt.supervisor.stream0.snm.give_ups"), 0);

    // sibling isolation: stream 0's survivors are bit-identical
    let clean0: Vec<u64> = clean.survivors[0].iter().map(|f| f.seq).collect();
    let faulted0: Vec<u64> = faulted.survivors[0].iter().map(|f| f.seq).collect();
    assert_eq!(clean0, faulted0, "fault on stream 1 leaked into stream 0");

    // conservation on the quarantined stream: survivors + dropped +
    // quarantined account for all 400 offered frames, exactly once each
    let survivors1 = faulted.survivors[1].len() as u64;
    let mut dropped = 0u64;
    let mut quarantined = 0u64;
    for stage in ["sdd", "snm", "tyolo", "reference"] {
        dropped += snap.counter(&format!("stream1.{stage}.frames_dropped"));
        quarantined += snap.counter(&format!("stream1.{stage}.frames_quarantined"));
    }
    assert_eq!(
        survivors1 + dropped + quarantined,
        400,
        "frames lost or double-disposed under quarantine"
    );
    assert!(quarantined > 0, "no frame was quarantined");
    assert_eq!(faulted.stream_health[1].frames_quarantined, quarantined);
    // everything from the fault point on died before T-YOLO
    assert!(faulted.survivors[1].iter().all(|f| f.seq < 50));
    // the stream's SDD kept draining its feeder: no frame stuck upstream
    assert_eq!(
        snap.counter("stream1.sdd.frames_in") + snap.counter("stream1.sdd.frames_quarantined"),
        400
    );
}

/// Failure injection #5 (watchdog + degrade policy): the shared T-YOLO
/// stalls for 2.5 s. Under `Block` the stall propagates into multi-second
/// end-to-end latencies; under `ShedOldest` the watchdog keeps evicting
/// over-age frames so p99 stays bounded near `max_lag_ms`.
#[test]
fn watchdog_shed_oldest_bounds_e2e_latency_under_stall() {
    let stall = StageFault::StallFor {
        at_frame: 0,
        dur_us: 2_500_000,
    };
    let plan = FaultPlan::new().with(0, FaultStage::TYolo, stall);
    // Deep T-YOLO queues so in-flight frames wait at the stalled stage
    // (where ShedOldest can see them) instead of backing up the pipeline.
    let base = FfsVaConfig {
        tyolo_queue_depth: 64,
        watchdog_deadline_ms: 100,
        ..FfsVaConfig::default()
    };

    let blocked = run_multi_pipeline_rt_faulted(
        two_rt_streams(),
        &FfsVaConfig {
            degrade_policy: DegradePolicy::Block,
            ..base
        },
        &plan,
    );
    let shed = run_multi_pipeline_rt_faulted(
        two_rt_streams(),
        &FfsVaConfig {
            degrade_policy: DegradePolicy::ShedOldest { max_lag_ms: 500 },
            ..base
        },
        &plan,
    );

    let p99 = |r: &ffs_va::prelude::MultiRtResult| {
        r.telemetry.histograms["latency.e2e_us"].quantile(0.99)
    };
    assert!(
        p99(&blocked) > 1e6,
        "Block should let the stall blow past 1 s e2e, got p99 {} µs",
        p99(&blocked)
    );
    assert!(
        p99(&shed) <= 1e6,
        "ShedOldest{{max_lag_ms:500}} must bound e2e p99 to ~1 s, got {} µs",
        p99(&shed)
    );
    assert!(shed.shed_frames > 0, "watchdog never shed a frame");
    assert!(
        shed.telemetry.counter("rt.watchdog.trips") > 0,
        "watchdog never tripped"
    );
    assert_eq!(blocked.shed_frames, 0, "Block must not shed");
    // shedding disposes frames, it never loses them: survivors + dropped +
    // shed + quarantined == offered
    let snap = &shed.telemetry;
    let mut disposed = shed.shed_frames;
    for s in 0..2 {
        disposed += shed.survivors[s].len() as u64;
        for stage in ["sdd", "snm", "tyolo", "reference"] {
            disposed += snap.counter(&format!("stream{s}.{stage}.frames_dropped"));
            disposed += snap.counter(&format!("stream{s}.{stage}.frames_quarantined"));
        }
    }
    assert_eq!(disposed, 800, "ShedOldest lost or double-disposed frames");
}

// Failure injection #6: random fault plans thrown at the DES engine must
// never lose or double-dispose a frame — survivors + drops + quarantines
// always account for the whole offer, and identical plans reproduce
// identical counters.
proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
    #[test]
    fn random_fault_plans_conserve_every_frame_in_des(
        faults in proptest::collection::vec((0usize..2, 0u8..9, 0u64..200), 0..6)
    ) {
        let mut plan = FaultPlan::new();
        for (stream, kind, at) in faults {
            let (stage, fault) = match kind {
                0 => (FaultStage::Sdd, StageFault::PanicAtFrame(at)),
                1 => (FaultStage::Snm, StageFault::PanicAtFrame(at)),
                2 => (FaultStage::Sdd, StageFault::StallFor { at_frame: at, dur_us: 5_000 }),
                3 => (FaultStage::Snm, StageFault::StallFor { at_frame: at, dur_us: 5_000 }),
                4 => (FaultStage::TYolo, StageFault::StallFor { at_frame: at, dur_us: 5_000 }),
                5 => (FaultStage::Reference, StageFault::StallFor { at_frame: at, dur_us: 5_000 }),
                6 => (FaultStage::Sdd, StageFault::FailNextPush { at_frame: at }),
                7 => (FaultStage::Snm, StageFault::FailNextPush { at_frame: at }),
                _ => (FaultStage::TYolo, StageFault::FailNextPush { at_frame: at }),
            };
            plan = plan.with(stream, stage, fault);
        }
        prop_assert!(plan.validate().is_ok());

        let n = 150usize;
        let run = || {
            Engine::new(
                FfsVaConfig::default(),
                Mode::Offline,
                vec![synthetic_input(n, 3), synthetic_input(n, 4)],
            )
            .with_fault_plan(&plan)
            .run()
        };
        let r = run();
        prop_assert_eq!(r.total_frames, 2 * n as u64);
        // conservation: every frame is disposed exactly once
        let dropped: u64 = r.stage_dropped.iter().sum();
        let quarantined: u64 = r.per_stream_quarantined.iter().sum();
        prop_assert_eq!(
            r.stage_executed[3] + dropped + quarantined,
            2 * n as u64,
            "lost/double-disposed frames under plan {:?}",
            plan
        );
        // determinism: the same plan reproduces the same counters
        let r2 = run();
        prop_assert_eq!(
            r.telemetry.frames_counters(),
            r2.telemetry.frames_counters()
        );
        prop_assert_eq!(r.per_stream_quarantined, r2.per_stream_quarantined);
    }
}

// Failure injection #7 (ingest robustness): random source-fault plans thrown
// at the DES ingest layer must classify every unique source frame exactly
// once — delivered, dropped, or quarantined — and identical plans must
// reproduce identical counters. Outages beyond the retry budget's coverage
// (~2.5 s at the default policy) degrade the stream to SourceLost instead of
// losing the run, and the dropped tail still counts toward conservation.
proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
    #[test]
    fn random_source_plans_conserve_every_frame_in_des(
        faults in proptest::collection::vec((0usize..2, 0u8..5, 0u64..200, 1u64..8), 1..6)
    ) {
        let mut plan = SourceFaultPlan::new();
        for (stream, kind, at, k) in faults {
            let fault = match kind {
                0 => SourceFault::DropRange { from: at, to: at + k },
                1 => SourceFault::CorruptAt { at_frame: at },
                // displacement up to 21 overflows the default reorder buffer
                // of 8, so late-frame eviction is exercised too
                2 => SourceFault::ReorderAt { at_frame: at, by: k * 3 },
                3 => SourceFault::DuplicateAt { at_frame: at },
                // outages from "one retry" to "budget exhausted" (SourceLost)
                _ => SourceFault::DisconnectAt { at_frame: at, dur_ms: 600 * k },
            };
            plan = plan.with(stream, fault);
        }
        prop_assert!(plan.validate().is_ok());

        let n = 150usize;
        let run = || {
            Engine::new(
                FfsVaConfig::default(),
                Mode::Offline,
                vec![synthetic_input(n, 3), synthetic_input(n, 4)],
            )
            .with_source_plan(&plan)
            .run()
        };
        let r = run();
        for s in 0..2 {
            let t = &r.telemetry;
            prop_assert_eq!(t.counter(&format!("stream{s}.src.frames_in")), n as u64);
            prop_assert_eq!(
                t.counter(&format!("stream{s}.src.frames_out"))
                    + t.counter(&format!("stream{s}.src.frames_dropped"))
                    + t.counter(&format!("stream{s}.src.frames_quarantined")),
                n as u64,
                "lost/double-disposed source frames under plan {:?}",
                plan
            );
        }
        // determinism: the same plan reproduces the same counters
        let r2 = run();
        prop_assert_eq!(
            r.telemetry.frames_counters(),
            r2.telemetry.frames_counters()
        );
        prop_assert_eq!(r.per_stream_source_lost.clone(), r2.per_stream_source_lost);
    }
}
