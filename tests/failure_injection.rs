//! Failure-injection tests (DESIGN.md §6): the feedback mechanism under a
//! stalled stage, overload detection, stream re-forwarding, and degenerate
//! configurations.

use ffs_va::core::instance::{
    balance_instances_from, has_spare_capacity, is_overloaded, AdmissionController, Placement,
};
use ffs_va::core::{Engine, FfsVaConfig, Mode, StreamInput, StreamThresholds};
use ffs_va::prelude::{BatchPolicy, FrameTrace};
use ffs_va::sched::{spawn_batch_stage, spawn_filter_stage, FeedbackQueue};
use std::time::Duration;

/// Synthetic decision trace: every `target_every`-th frame is a target.
fn synthetic_input(n: usize, target_every: usize) -> StreamInput {
    let traces = (0..n)
        .map(|i| {
            let target = target_every > 0 && i % target_every == 0;
            FrameTrace {
                seq: i as u64,
                pts_ms: (i as u64) * 33,
                sdd_distance: if target { 0.01 } else { 0.0001 },
                snm_prob: if target { 0.9 } else { 0.05 },
                tyolo_count: u16::from(target),
                reference_count: u16::from(target),
                truth_count: u16::from(target),
                truth_complete: u16::from(target),
            }
        })
        .collect();
    StreamInput {
        traces,
        thresholds: StreamThresholds {
            delta_diff: 0.001,
            t_pre: 0.5,
            number_of_objects: 1,
        },
    }
}

/// Failure injection #1: a deliberately stalled T-YOLO stage. The bounded
/// feedback queues must cap upstream growth and propagate backpressure all
/// the way to the source — the paper's feedback mechanism (§4.3.1) — and no
/// frame may be lost or reordered once the stall is released.
#[test]
fn stalled_tyolo_stage_bounds_upstream_queues_via_feedback() {
    let cfg = FfsVaConfig::default();
    let q_src: FeedbackQueue<u64> = FeedbackQueue::new(cfg.sdd_queue_depth);
    let q_snm: FeedbackQueue<u64> = FeedbackQueue::new(cfg.snm_queue_depth);
    let q_tyolo: FeedbackQueue<u64> = FeedbackQueue::new(cfg.tyolo_queue_depth);
    let q_ref: FeedbackQueue<u64> = FeedbackQueue::new(1024);

    let h_sdd = spawn_filter_stage("sdd", q_src.clone(), q_snm.clone(), Some);
    let h_snm = spawn_batch_stage(
        "snm",
        q_snm.clone(),
        q_tyolo.clone(),
        BatchPolicy::Dynamic { size: 10 },
        |batch: Vec<u64>| batch,
    );
    // the injected fault: T-YOLO takes 20 ms per frame instead of ~5 ms
    let h_tyolo = spawn_filter_stage("tyolo-stalled", q_tyolo.clone(), q_ref.clone(), |x: u64| {
        std::thread::sleep(Duration::from_millis(20));
        Some(x)
    });

    // A 30-FPS camera worth of frames offered as fast as possible.
    let q_in = q_src.clone();
    let producer = std::thread::spawn(move || {
        for i in 0..500u64 {
            if q_in.push(i).is_err() {
                break;
            }
        }
    });

    // Let the stall develop.
    std::thread::sleep(Duration::from_millis(400));

    // Bounded growth at every stage, and feedback reached the source: the
    // producer is blocked long before its 500 frames enter the pipeline.
    assert!(q_src.stats().max_depth <= cfg.sdd_queue_depth);
    assert!(q_snm.stats().max_depth <= cfg.snm_queue_depth);
    assert!(q_tyolo.stats().max_depth <= cfg.tyolo_queue_depth);
    let entered = q_src.stats().pushed;
    assert!(
        entered < 200,
        "feedback failed: {} frames entered a stalled pipeline",
        entered
    );
    assert!(
        q_src.stats().backpressure_events > 0,
        "producer never hit backpressure"
    );

    // Release: stop offering frames; everything in flight must drain through
    // the slow stage without loss or reordering.
    q_src.close();
    producer.join().unwrap();
    let mut received = Vec::new();
    while let Some(v) = q_ref.pop() {
        received.push(v);
    }
    h_sdd.join();
    h_snm.join();
    h_tyolo.join();

    let entered_total = q_src.stats().pushed;
    assert_eq!(
        received.len() as u64,
        entered_total,
        "frames lost in the stalled pipeline"
    );
    assert_eq!(
        received,
        (0..entered_total).collect::<Vec<u64>>(),
        "stall reordered frames"
    );
}

/// Failure injection #2: a burst of cameras lands on one instance and
/// overloads it. Re-forwarding (§4.3.1) must move streams to instances with
/// spare capacity until every instance is real-time again.
#[test]
fn stream_overload_triggers_reforwarding_to_spare_instances() {
    let cfg = FfsVaConfig::default();
    let streams: Vec<StreamInput> = (0..12).map(|_| synthetic_input(300, 2)).collect();

    // Everything on instance 0 — provably overloaded on its own.
    let all_on_zero = vec![0usize; streams.len()];
    let packed: Vec<StreamInput> = streams.clone();
    let r0 = Engine::new(cfg, Mode::Online, packed).run();
    assert!(
        is_overloaded(&r0, &cfg),
        "12 heavy streams should overload one instance"
    );

    let out = balance_instances_from(&cfg, &streams, 3, 48, all_on_zero);
    assert!(
        out.reforwarded >= 2,
        "only {} streams re-forwarded",
        out.reforwarded
    );
    assert!(
        out.all_realtime,
        "assignment {:?} not real-time",
        out.assignment
    );
    let still_on_zero = out.assignment.iter().filter(|&&a| a == 0).count();
    assert!(
        still_on_zero < streams.len(),
        "nothing left the overloaded instance"
    );
    // the relieved instance really is healthy now
    let relieved: Vec<StreamInput> = out
        .assignment
        .iter()
        .enumerate()
        .filter(|(_, &a)| a == 0)
        .map(|(i, _)| streams[i].clone())
        .collect();
    let r1 = Engine::new(cfg, Mode::Online, relieved).run();
    assert!(!is_overloaded(&r1, &cfg));
}

/// Failure injection #3: offered load beyond capacity must be *refused* at
/// admission, never silently degraded — and the overload signals must read
/// consistently.
#[test]
fn admission_refuses_streams_beyond_capacity() {
    let cfg = FfsVaConfig::default();

    let light = Engine::new(cfg, Mode::Online, vec![synthetic_input(300, 10)]).run();
    assert!(has_spare_capacity(&light, &cfg));
    assert!(!is_overloaded(&light, &cfg));

    let mut ctl = AdmissionController::new(cfg, 1);
    let mut admitted = 0usize;
    let mut rejected = false;
    for _ in 0..40 {
        match ctl.try_admit(synthetic_input(300, 2)) {
            Placement::Admitted { .. } => admitted += 1,
            Placement::Rejected => {
                rejected = true;
                break;
            }
        }
    }
    assert!(rejected, "controller admitted 40 heavy streams");
    assert!(admitted >= 1);
    // what was admitted still runs in real time
    let load = ctl.into_instances().remove(0);
    let r = Engine::new(cfg, Mode::Online, load).run();
    assert!(r.realtime(cfg.online_fps));
}

/// Degenerate configuration: minimal queue depths and an awkward static
/// batch size must not deadlock or drop frames — every frame is disposed
/// exactly once (the §6 "degenerate batch sizes, minimal queue depths"
/// clause).
#[test]
fn degenerate_config_minimal_queues_still_drains_every_frame() {
    let cfg = FfsVaConfig {
        sdd_queue_depth: 1,
        snm_queue_depth: 1,
        tyolo_queue_depth: 1,
        reference_queue_depth: 1,
        batch_policy: BatchPolicy::Static { size: 7 },
        ..FfsVaConfig::default()
    };
    let n = 123usize;
    let r = Engine::new(cfg, Mode::Offline, vec![synthetic_input(n, 3)]).run();
    assert_eq!(r.total_frames, n as u64);
    assert_eq!(r.stage_executed[0], n as u64, "SDD must see every frame");
    // disposition conservation: executed by reference + dropped somewhere = all
    let dropped: u64 = r.stage_dropped.iter().sum();
    assert_eq!(r.stage_executed[3] + dropped, n as u64);
    // every 3rd frame passes the whole cascade: 0, 3, …, 120 → 41 frames
    assert_eq!(r.stage_executed[3], 41);
}
