//! Ingest-robustness tests (DESIGN.md §9): unreliable sources, reconnect
//! backoff, reorder smoothing, SourceLost degradation, and crash-safe
//! checkpoint/resume — exercised on both engines and compared bit-for-bit.

use ffs_va::core::{CheckpointSpec, Engine, Mode, StreamInput, StreamThresholds};
use ffs_va::models::reference::ReferenceModel;
use ffs_va::models::sdd::SddFilter;
use ffs_va::models::snm::{SnmModel, SnmReport, SnmTrainOptions};
use ffs_va::models::tyolo::TinyYolo;
use ffs_va::prelude::{
    run_multi_pipeline_rt, run_multi_pipeline_rt_robust, BankOptions, FaultPlan, FfsVaConfig,
    FilterBank, LabeledFrame, ObjectClass, SourceFault, SourceFaultPlan, VideoStream,
};
use ffs_va::video::workloads;
use proptest::prelude::*;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::OnceLock;

const FRAMES: u64 = 400;

fn fast_bank_opts() -> BankOptions {
    BankOptions {
        snm: SnmTrainOptions {
            epochs: 10,
            batch_size: 16,
            lr: 0.08,
            train_frac: 0.7,
            max_samples: 300,
            restarts: 2,
        },
        ..Default::default()
    }
}

/// One stream's trained cascade state plus its eval clip — everything needed
/// to rebuild identical `FilterBank`s for any number of runs. Training is
/// the expensive part, so it happens exactly once per process.
struct StreamSeed {
    clip: Vec<LabeledFrame>,
    target: ObjectClass,
    sdd: SddFilter,
    snm: SnmModel,
    snm_report: SnmReport,
}

fn seeds() -> &'static Vec<StreamSeed> {
    static SEEDS: OnceLock<Vec<StreamSeed>> = OnceLock::new();
    SEEDS.get_or_init(|| {
        [41u64, 42]
            .iter()
            .map(|&seed| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
                let vcfg = workloads::test_tiny(ObjectClass::Car, 0.3, seed);
                let mut cam = VideoStream::new(seed as u32, vcfg);
                let training = cam.clip(1200);
                let bank =
                    FilterBank::build(&training, ObjectClass::Car, &fast_bank_opts(), &mut rng);
                let clip = cam.clip(FRAMES as usize);
                StreamSeed {
                    clip,
                    target: bank.target,
                    sdd: bank.sdd,
                    snm: bank.snm,
                    snm_report: bank.snm_report,
                }
            })
            .collect()
    })
}

fn bank_of(sd: &StreamSeed) -> FilterBank {
    FilterBank {
        target: sd.target,
        sdd: sd.sdd.clone(),
        snm: sd.snm.clone(),
        tyolo: TinyYolo::default(),
        reference: ReferenceModel::default(),
        snm_report: sd.snm_report.clone(),
    }
}

fn rt_streams() -> Vec<(Vec<LabeledFrame>, FilterBank)> {
    seeds()
        .iter()
        .map(|sd| (sd.clip.clone(), bank_of(sd)))
        .collect()
}

/// Decision traces of the SAME clips through the SAME banks the RT engine
/// runs, so the two engines' frame counters are comparable bit-for-bit.
fn des_inputs(cfg: &FfsVaConfig) -> Vec<StreamInput> {
    seeds()
        .iter()
        .map(|sd| {
            let mut bank = bank_of(sd);
            StreamInput {
                traces: bank.trace_clip(&sd.clip),
                thresholds: StreamThresholds {
                    delta_diff: sd.sdd.delta_diff,
                    t_pre: sd.snm.t_pre(cfg.filter_degree),
                    number_of_objects: cfg.number_of_objects,
                },
            }
        })
        .collect()
}

/// First sequence number of stream `s`'s eval clip — seqs continue from the
/// training clip, so fault frame numbers are offsets from here.
fn base_seq(s: usize) -> u64 {
    seeds()[s].clip[0].frame.seq
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffsva_ingest_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance: under `disconnect@N+500ms` the affected stream reconnects
/// (`src.reconnects >= 1`) and loses nothing, and sibling streams are
/// bit-identical to an unfaulted run.
#[test]
fn disconnect_reconnects_and_isolates_siblings_rt() {
    let cfg = FfsVaConfig::default();
    let clean = run_multi_pipeline_rt(rt_streams(), &cfg);

    let plan = SourceFaultPlan::new().with(
        1,
        SourceFault::DisconnectAt {
            at_frame: base_seq(1) + 50,
            dur_ms: 500,
        },
    );
    let r = run_multi_pipeline_rt_robust(rt_streams(), &cfg, &FaultPlan::default(), &plan, None);

    let t = &r.telemetry;
    assert!(t.counter("src.reconnects") >= 1, "never reconnected");
    assert!(r.stream_health.iter().all(|h| h.healthy()));
    // a survived outage delays frames but loses none, on either stream
    assert_eq!(r.survivors, clean.survivors);
    for s in 0..2 {
        assert_eq!(t.counter(&format!("stream{s}.src.frames_in")), FRAMES);
        assert_eq!(t.counter(&format!("stream{s}.src.frames_out")), FRAMES);
        assert_eq!(t.counter(&format!("stream{s}.src.frames_dropped")), 0);
    }
}

/// An outage far beyond the retry budget degrades the stream to SourceLost
/// instead of killing the run: its tail is dropped and accounted, and the
/// sibling stream's survivors are untouched.
#[test]
fn reconnect_budget_exhaustion_degrades_to_source_lost_rt() {
    let cfg = FfsVaConfig::default();
    let clean = run_multi_pipeline_rt(rt_streams(), &cfg);

    let base = base_seq(1);
    let plan = SourceFaultPlan::new().with(
        1,
        SourceFault::DisconnectAt {
            at_frame: base + 100,
            dur_ms: 60_000,
        },
    );
    let r = run_multi_pipeline_rt_robust(rt_streams(), &cfg, &FaultPlan::default(), &plan, None);

    assert!(r.stream_health[0].healthy(), "sibling was degraded");
    assert!(r.stream_health[1].source_lost);
    assert!(!r.stream_health[1].healthy());
    assert_eq!(r.survivors[0], clean.survivors[0]);
    assert!(r.survivors[1].iter().all(|f| f.seq < base + 100));

    // conservation on the lost stream: the whole clip is accounted
    let t = &r.telemetry;
    assert_eq!(t.counter("stream1.src.frames_in"), FRAMES);
    assert_eq!(t.counter("stream1.src.frames_out"), 100);
    assert_eq!(t.counter("stream1.src.frames_dropped"), FRAMES - 100);
    assert_eq!(t.counter("stream1.src.frames_quarantined"), 0);
}

/// Acceptance: kill-and-resume determinism. A run checkpointed and killed
/// after 250 frames, then resumed over the full clips, must report survivor
/// sets and frame counters bit-identical to one uninterrupted run — under
/// active source faults.
#[test]
fn kill_and_resume_matches_uninterrupted_run_rt() {
    let cfg = FfsVaConfig::default();
    let faults = FaultPlan::default();
    let plan = SourceFaultPlan::new()
        .with(
            0,
            SourceFault::DropRange {
                from: base_seq(0) + 40,
                to: base_seq(0) + 44,
            },
        )
        .with(
            1,
            SourceFault::CorruptAt {
                at_frame: base_seq(1) + 120,
            },
        );

    let dir_a = tmp_dir("uninterrupted");
    let full = run_multi_pipeline_rt_robust(
        rt_streams(),
        &cfg,
        &faults,
        &plan,
        Some(&CheckpointSpec::new(&dir_a, 256, false)),
    );
    assert!(full.telemetry.counter("checkpoint.writes") >= 1);

    // segment 1: the process dies after 250 frames per stream
    let dir_b = tmp_dir("resume");
    let mut cut = rt_streams();
    for (clip, _) in &mut cut {
        clip.truncate(250);
    }
    let _ = run_multi_pipeline_rt_robust(
        cut,
        &cfg,
        &faults,
        &plan,
        Some(&CheckpointSpec::new(&dir_b, 256, false)),
    );
    // segment 2: resume from the checkpoints with the full clips
    let resumed = run_multi_pipeline_rt_robust(
        rt_streams(),
        &cfg,
        &faults,
        &plan,
        Some(&CheckpointSpec::new(&dir_b, 256, true)),
    );

    assert_eq!(resumed.survivors, full.survivors);
    assert_eq!(
        resumed.telemetry.frames_counters(),
        full.telemetry.frames_counters()
    );
    assert_eq!(
        resumed.telemetry.counter("src.corrupt"),
        full.telemetry.counter("src.corrupt")
    );
    assert!(resumed.stream_health.iter().all(|h| h.healthy()));

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Both engines run the same source-fault plan over the same frames and must
/// agree on every frame counter — the DES↔RT conformance contract extended
/// to the ingest layer.
#[test]
fn des_and_rt_agree_on_ingest_accounting() {
    let cfg = FfsVaConfig::default();
    let plan = SourceFaultPlan::new()
        .with(
            0,
            SourceFault::DropRange {
                from: base_seq(0) + 10,
                to: base_seq(0) + 13,
            },
        )
        .with(
            0,
            SourceFault::ReorderAt {
                at_frame: base_seq(0) + 40,
                by: 2,
            },
        )
        .with(
            1,
            SourceFault::CorruptAt {
                at_frame: base_seq(1) + 20,
            },
        )
        .with(
            1,
            SourceFault::DuplicateAt {
                at_frame: base_seq(1) + 30,
            },
        );

    let rt = run_multi_pipeline_rt_robust(rt_streams(), &cfg, &FaultPlan::default(), &plan, None);
    let inputs = des_inputs(&cfg);
    let des = Engine::new(cfg, Mode::Offline, inputs)
        .with_source_plan(&plan)
        .run();

    assert_eq!(
        des.telemetry.frames_counters(),
        rt.telemetry.frames_counters(),
        "engines disagree under source faults"
    );
    for t in [&rt.telemetry, &des.telemetry] {
        assert_eq!(t.counter("src.corrupt"), 1);
        assert_eq!(t.counter("src.duplicates"), 1);
        assert_eq!(t.counter("stream0.src.frames_dropped"), 3);
        assert_eq!(t.counter("stream0.src.frames_in"), FRAMES);
        assert_eq!(t.counter("stream1.src.frames_quarantined"), 1);
    }
}

// Random source-fault plans: every unique frame must be classified exactly
// once by both engines (delivered / dropped / quarantined / evicted), and
// the engines must agree bit-for-bit.
proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
    #[test]
    fn random_source_plans_conserve_frames_in_both_engines(
        faults in proptest::collection::vec((0usize..2, 0u8..5, 0u64..300, 1u64..6), 1..5)
    ) {
        let mut plan = SourceFaultPlan::new();
        for (stream, kind, at, k) in faults {
            let base = base_seq(stream);
            let fault = match kind {
                0 => SourceFault::DropRange { from: base + at, to: base + at + k },
                1 => SourceFault::CorruptAt { at_frame: base + at },
                2 => SourceFault::ReorderAt { at_frame: base + at, by: k },
                3 => SourceFault::DuplicateAt { at_frame: base + at },
                // short outages: always within the default retry budget
                _ => SourceFault::DisconnectAt { at_frame: base + at, dur_ms: 100 * k },
            };
            plan = plan.with(stream, fault);
        }
        prop_assert!(plan.validate().is_ok());

        let cfg = FfsVaConfig::default();
        let rt = run_multi_pipeline_rt_robust(
            rt_streams(), &cfg, &FaultPlan::default(), &plan, None,
        );
        let inputs = des_inputs(&cfg);
        let des = Engine::new(cfg, Mode::Offline, inputs)
            .with_source_plan(&plan)
            .run();

        for t in [&rt.telemetry, &des.telemetry] {
            for s in 0..2 {
                prop_assert_eq!(t.counter(&format!("stream{s}.src.frames_in")), FRAMES);
                prop_assert_eq!(
                    t.counter(&format!("stream{s}.src.frames_out"))
                        + t.counter(&format!("stream{s}.src.frames_dropped"))
                        + t.counter(&format!("stream{s}.src.frames_quarantined")),
                    FRAMES,
                    "conservation broken on stream {} under {:?}", s, plan
                );
            }
        }
        prop_assert_eq!(
            des.telemetry.frames_counters(),
            rt.telemetry.frames_counters()
        );
    }
}
