//! End-to-end accuracy bound for the int8 quantized SNM path.
//!
//! Trains one per-stream cascade on the `test` workload substrate, traces
//! the same evaluation clip through the f32 and int8 SNM execution paths,
//! and bounds how much quantization may move the cascade's headline
//! accuracy number: the missed-scene rate may not degrade by more than
//! 2 percentage points (the same bound `ffsva bench` enforces in-process
//! and the bench-gate pins via the `accuracy.*` series).
//!
//! CI runs this file on both the scalar and `--features simd` builds; the
//! int8 kernels are exact on both (see tests/simd_conformance.rs), so the
//! measured delta is a property of the quantization scheme, not the CPU.

use ffs_va::models::snm::SnmTrainOptions;
use ffs_va::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRAIN_FRAMES: usize = 1200;
const EVAL_FRAMES: usize = 1500;
const MISS_DELTA_BOUND_PP: f64 = 2.0;

fn trained_bank_and_clip() -> (FilterBank, Vec<LabeledFrame>) {
    let cfg = workloads::test_tiny(ObjectClass::Car, 0.3, 7);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7E57);
    let mut stream = VideoStream::new(0, cfg);
    let train_clip: Vec<LabeledFrame> = stream.clip(TRAIN_FRAMES);
    let opts = BankOptions {
        snm: SnmTrainOptions {
            epochs: 10,
            batch_size: 16,
            lr: 0.08,
            train_frac: 0.7,
            max_samples: 300,
            restarts: 2,
        },
        ..Default::default()
    };
    let bank = FilterBank::build(&train_clip, ObjectClass::Car, &opts, &mut rng);
    let eval_clip = stream.clip(EVAL_FRAMES);
    (bank, eval_clip)
}

#[test]
fn int8_missed_scene_delta_within_two_points() {
    let (mut bank, eval_clip) = trained_bank_and_clip();
    let th = StreamThresholds {
        delta_diff: bank.sdd.delta_diff,
        t_pre: bank.snm.t_pre(0.5),
        number_of_objects: 1,
    };

    let traces_f32 = bank.trace_clip(&eval_clip);
    let traces_int8 = bank.trace_clip_int8(&eval_clip);
    assert_eq!(traces_f32.len(), traces_int8.len());

    // Only the SNM probability may differ between the two traces; every
    // other column comes from the same (pure) SDD/T-YOLO/reference
    // evaluation, which is what makes the accuracy diff below attributable
    // to quantization alone.
    let mut prob_delta_sum = 0.0f64;
    for (f, q) in traces_f32.iter().zip(traces_int8.iter()) {
        assert_eq!(f.seq, q.seq);
        assert_eq!(f.sdd_distance.to_bits(), q.sdd_distance.to_bits());
        assert_eq!(f.tyolo_count, q.tyolo_count);
        assert_eq!(f.reference_count, q.reference_count);
        assert_eq!(f.truth_count, q.truth_count);
        assert_eq!(f.truth_complete, q.truth_complete);
        prob_delta_sum += (f.snm_prob - q.snm_prob).abs() as f64;
    }
    let mean_prob_delta = prob_delta_sum / traces_f32.len() as f64;
    assert!(
        mean_prob_delta < 0.15,
        "mean |snm_prob(f32) - snm_prob(int8)| = {mean_prob_delta:.4} — quantization noise \
         is far larger than the scheme's design point"
    );

    let rep_f32 = evaluate_accuracy(&traces_f32, &th);
    let rep_int8 = evaluate_accuracy(&traces_int8, &th);
    let delta_pp = (rep_int8.scene_miss_rate - rep_f32.scene_miss_rate) * 100.0;
    assert!(
        delta_pp <= MISS_DELTA_BOUND_PP,
        "int8 missed-scene rate degraded by {delta_pp:.2}pp \
         (f32 {:.4}, int8 {:.4}); bound is {MISS_DELTA_BOUND_PP}pp",
        rep_f32.scene_miss_rate,
        rep_int8.scene_miss_rate,
    );
}
