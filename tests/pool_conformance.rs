//! Pool-conformance battery (DESIGN.md §11): the sharded stage-worker pools
//! must be *observationally identical* to the per-stream-thread layout —
//! survivor sets, frame counters, supervision outcomes, and checkpoint files
//! are all bit-identical for any worker count, under clean runs, injected
//! faults, quarantines, and kill-and-resume.
//!
//! CI parameterizes the worker sweep through `FFSVA_POOL_WORKERS` (a
//! comma-separated list, e.g. `1,8`); unset, the tests sweep {1, 2, 8} so
//! one invocation covers fewer-, equal-, and more-workers-than-streams.

use ffs_va::core::{CheckpointSpec, Engine, Mode, StreamInput, StreamThresholds};
use ffs_va::models::reference::ReferenceModel;
use ffs_va::models::sdd::SddFilter;
use ffs_va::models::snm::{SnmModel, SnmReport, SnmTrainOptions};
use ffs_va::models::tyolo::TinyYolo;
use ffs_va::prelude::{
    run_multi_pipeline_rt, run_multi_pipeline_rt_faulted, run_multi_pipeline_rt_robust,
    BankOptions, FaultPlan, FaultStage, FfsVaConfig, FilterBank, LabeledFrame, MultiRtResult,
    ObjectClass, SourceFaultPlan, StageFault, VideoStream,
};
use ffs_va::video::workloads;
use proptest::prelude::*;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::OnceLock;

const FRAMES: u64 = 400;
/// Streams per run — more streams than the small worker counts so shards
/// genuinely multiplex, built from two trained banks reused round-robin.
const STREAMS: usize = 4;

/// Worker counts to sweep. CI pins this via `FFSVA_POOL_WORKERS=1,8`.
fn worker_counts() -> Vec<usize> {
    match std::env::var("FFSVA_POOL_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("FFSVA_POOL_WORKERS must be a comma-separated list of worker counts")
            })
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

fn fast_bank_opts() -> BankOptions {
    BankOptions {
        snm: SnmTrainOptions {
            epochs: 10,
            batch_size: 16,
            lr: 0.08,
            train_frac: 0.7,
            max_samples: 300,
            restarts: 2,
        },
        ..Default::default()
    }
}

/// One trained cascade plus its eval clip; training happens once per process
/// and every run rebuilds bit-identical banks from the cached state.
struct StreamSeed {
    clip: Vec<LabeledFrame>,
    target: ObjectClass,
    sdd: SddFilter,
    snm: SnmModel,
    snm_report: SnmReport,
}

fn seeds() -> &'static Vec<StreamSeed> {
    static SEEDS: OnceLock<Vec<StreamSeed>> = OnceLock::new();
    SEEDS.get_or_init(|| {
        [41u64, 42]
            .iter()
            .map(|&seed| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
                let vcfg = workloads::test_tiny(ObjectClass::Car, 0.3, seed);
                let mut cam = VideoStream::new(seed as u32, vcfg);
                let training = cam.clip(1200);
                let bank =
                    FilterBank::build(&training, ObjectClass::Car, &fast_bank_opts(), &mut rng);
                let clip = cam.clip(FRAMES as usize);
                StreamSeed {
                    clip,
                    target: bank.target,
                    sdd: bank.sdd,
                    snm: bank.snm,
                    snm_report: bank.snm_report,
                }
            })
            .collect()
    })
}

fn bank_of(sd: &StreamSeed) -> FilterBank {
    FilterBank {
        target: sd.target,
        sdd: sd.sdd.clone(),
        snm: sd.snm.clone(),
        tyolo: TinyYolo::default(),
        reference: ReferenceModel::default(),
        snm_report: sd.snm_report.clone(),
    }
}

/// `STREAMS` independent pipelines from the two trained banks, reused
/// round-robin — streams 0/2 and 1/3 run identical inputs, so the pool has
/// more slots than its small worker counts.
fn rt_streams() -> Vec<(Vec<LabeledFrame>, FilterBank)> {
    (0..STREAMS)
        .map(|s| {
            let sd = &seeds()[s % 2];
            (sd.clip.clone(), bank_of(sd))
        })
        .collect()
}

/// Decision traces of the SAME clips through the SAME banks, for the DES
/// side of the conformance contract.
fn des_inputs(cfg: &FfsVaConfig) -> Vec<StreamInput> {
    (0..STREAMS)
        .map(|s| {
            let sd = &seeds()[s % 2];
            let mut bank = bank_of(sd);
            StreamInput {
                traces: bank.trace_clip(&sd.clip),
                thresholds: StreamThresholds {
                    delta_diff: sd.sdd.delta_diff,
                    t_pre: sd.snm.t_pre(cfg.filter_degree),
                    number_of_objects: cfg.number_of_objects,
                },
            }
        })
        .collect()
}

/// First sequence number of a stream's eval clip (seqs continue from the
/// 1200-frame training clip).
fn base_seq(s: usize) -> u64 {
    seeds()[s % 2].clip[0].frame.seq
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffsva_pool_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Per-stream survivor sequence numbers — the cascade's observable output.
fn survivor_seqs(r: &MultiRtResult) -> Vec<Vec<u64>> {
    r.survivors
        .iter()
        .map(|s| s.iter().map(|f| f.seq).collect())
        .collect()
}

/// Acceptance (tentpole): for every worker count the pooled layout's
/// survivor sets, frame counters, and public (non-engine-private) series
/// names are bit-identical to the per-stream-thread layout.
#[test]
fn pooled_survivors_bit_identical_to_per_stream_threads() {
    let cfg = FfsVaConfig::default();
    let legacy = run_multi_pipeline_rt(rt_streams(), &cfg);
    assert!(legacy.stream_health.iter().all(|h| h.healthy()));
    assert!(legacy.survivors.iter().any(|s| !s.is_empty()));

    for w in worker_counts() {
        let pooled_cfg = cfg.with_pool_workers(w, w);
        assert!(pooled_cfg.pooled());
        let pooled = run_multi_pipeline_rt(rt_streams(), &pooled_cfg);

        assert_eq!(
            pooled.survivors, legacy.survivors,
            "survivor sets moved under {w} pool workers"
        );
        assert_eq!(
            pooled.telemetry.frames_counters(),
            legacy.telemetry.frames_counters(),
            "frame counters moved under {w} pool workers"
        );
        // the execution layout is invisible outside the rt. namespace
        assert_eq!(
            pooled.telemetry.conformant_names(),
            legacy.telemetry.conformant_names(),
            "public series names moved under {w} pool workers"
        );
        assert!(pooled.stream_health.iter().all(|h| h.healthy()));
        // and the pool really ran: its engine-private series exist
        for stage in ["sdd", "snm"] {
            assert!(
                pooled
                    .telemetry
                    .gauges
                    .contains_key(&format!("rt.pool.{stage}.worker_busy_pct")),
                "rt.pool.{stage} telemetry missing"
            );
        }
    }
}

/// DES↔RT conformance holds under pooling: both engines emit identical
/// frame-counter names *and values* for the same clips and banks.
#[test]
fn des_and_rt_agree_under_pooling() {
    let cfg = FfsVaConfig::default().with_pool_workers(2, 2);
    let rt = run_multi_pipeline_rt(rt_streams(), &cfg);
    let inputs = des_inputs(&cfg);
    let des = Engine::new(cfg, Mode::Offline, inputs).run();

    assert_eq!(
        des.telemetry.frames_counters(),
        rt.telemetry.frames_counters(),
        "engines disagree under pooling"
    );
}

/// Quarantine isolation under pooling: a persistent SNM panic on one stream
/// burns its restart budget and quarantines *only* that stream, while pooled
/// siblings sharing the same workers stay bit-identical to a clean run.
#[test]
fn pooled_quarantine_isolates_shard_siblings() {
    let cfg = FfsVaConfig {
        restart_budget: 1,
        restart_backoff_ms: 1,
        ..FfsVaConfig::default()
    }
    .with_pool_workers(2, 2);
    let clean = run_multi_pipeline_rt(rt_streams(), &cfg);

    let plan = FaultPlan::new().with(
        1,
        FaultStage::Snm,
        StageFault::PanicAtFrame(base_seq(1) + 50),
    );
    let faulted = run_multi_pipeline_rt_faulted(rt_streams(), &cfg, &plan);

    assert!(faulted.stream_health[1].quarantined);
    assert_eq!(
        faulted.stream_health[1].failed_stage.as_deref(),
        Some("snm")
    );
    assert_eq!(faulted.stream_health[1].restarts, 1);
    let snap = &faulted.telemetry;
    assert_eq!(snap.counter("rt.supervisor.stream1.snm.restarts"), 1);
    assert_eq!(snap.counter("rt.supervisor.stream1.snm.give_ups"), 1);

    // every pooled sibling — including stream 3, which runs the *same* clip
    // through the same worker pool — is untouched
    for s in [0usize, 2, 3] {
        assert!(
            faulted.stream_health[s].healthy(),
            "fault on stream 1 leaked into pooled sibling {s}"
        );
        assert_eq!(
            faulted.survivors[s], clean.survivors[s],
            "pooled sibling {s} survivors moved"
        );
        assert_eq!(
            snap.counter(&format!("rt.supervisor.stream{s}.snm.give_ups")),
            0
        );
    }
    // conservation on the quarantined stream: survivors + dropped +
    // quarantined dispose all offered frames exactly once
    let mut disposed = faulted.survivors[1].len() as u64;
    for stage in ["sdd", "snm", "tyolo", "reference"] {
        disposed += snap.counter(&format!("stream1.{stage}.frames_dropped"));
        disposed += snap.counter(&format!("stream1.{stage}.frames_quarantined"));
    }
    assert_eq!(
        disposed, FRAMES,
        "quarantine lost or double-disposed frames"
    );
    assert!(faulted.survivors[1]
        .iter()
        .all(|f| f.seq < base_seq(1) + 50));
    // quarantine outcomes are layout-independent: the per-stream-thread
    // layout reaches the exact same state under the same plan
    let legacy = run_multi_pipeline_rt_faulted(
        rt_streams(),
        &FfsVaConfig {
            restart_budget: 1,
            restart_backoff_ms: 1,
            ..FfsVaConfig::default()
        },
        &plan,
    );
    assert_eq!(faulted.survivors, legacy.survivors);
    assert_eq!(
        faulted.telemetry.frames_counters(),
        legacy.telemetry.frames_counters()
    );
}

/// Kill-and-resume determinism under pools: a pooled run checkpointed and
/// killed after 250 frames per stream, then resumed (still pooled), reports
/// survivors and frame counters bit-identical to an uninterrupted pooled run
/// — which is itself bit-identical to the per-stream-thread layout.
#[test]
fn pooled_kill_and_resume_matches_uninterrupted_run() {
    let cfg = FfsVaConfig::default().with_pool_workers(2, 2);
    let faults = FaultPlan::default();
    let src = SourceFaultPlan::default();

    let dir_a = tmp_dir("uninterrupted");
    let full = run_multi_pipeline_rt_robust(
        rt_streams(),
        &cfg,
        &faults,
        &src,
        Some(&CheckpointSpec::new(&dir_a, 256, false)),
    );
    assert!(full.telemetry.counter("checkpoint.writes") >= 1);

    // segment 1: the process dies after 250 frames per stream
    let dir_b = tmp_dir("resume");
    let mut cut = rt_streams();
    for (clip, _) in &mut cut {
        clip.truncate(250);
    }
    let _ = run_multi_pipeline_rt_robust(
        cut,
        &cfg,
        &faults,
        &src,
        Some(&CheckpointSpec::new(&dir_b, 256, false)),
    );
    // segment 2: resume from the checkpoints with the full clips
    let resumed = run_multi_pipeline_rt_robust(
        rt_streams(),
        &cfg,
        &faults,
        &src,
        Some(&CheckpointSpec::new(&dir_b, 256, true)),
    );

    assert_eq!(resumed.survivors, full.survivors);
    assert_eq!(
        resumed.telemetry.frames_counters(),
        full.telemetry.frames_counters()
    );
    assert!(resumed.stream_health.iter().all(|h| h.healthy()));

    // cross-layout: the uninterrupted pooled run equals the per-stream
    // layout, so resume-under-pools inherits bit-identity transitively
    let legacy = run_multi_pipeline_rt(rt_streams(), &FfsVaConfig::default());
    assert_eq!(survivor_seqs(&full), survivor_seqs(&legacy));

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Migration round-trip: a stream checkpointed on one instance shape resumes
/// on an instance with a *different* pool geometry (the re-forwarding path:
/// checkpoint, ship the file, resume elsewhere). The reunited run must be
/// bit-identical to never having moved.
#[test]
fn migration_across_pool_geometries_is_bit_identical() {
    let cfg_a = FfsVaConfig::default().with_pool_workers(1, 1);
    let cfg_b = FfsVaConfig::default().with_pool_workers(8, 8);
    let faults = FaultPlan::default();
    let src = SourceFaultPlan::default();

    let dir_home = tmp_dir("never_moved");
    let stay = run_multi_pipeline_rt_robust(
        rt_streams(),
        &cfg_a,
        &faults,
        &src,
        Some(&CheckpointSpec::new(&dir_home, 256, false)),
    );

    // instance A runs the first 250 frames and checkpoints
    let dir_move = tmp_dir("migrated");
    let mut cut = rt_streams();
    for (clip, _) in &mut cut {
        clip.truncate(250);
    }
    let _ = run_multi_pipeline_rt_robust(
        cut,
        &cfg_a,
        &faults,
        &src,
        Some(&CheckpointSpec::new(&dir_move, 256, false)),
    );
    // instance B (different worker count) resumes from A's checkpoint files
    let moved = run_multi_pipeline_rt_robust(
        rt_streams(),
        &cfg_b,
        &faults,
        &src,
        Some(&CheckpointSpec::new(&dir_move, 256, true)),
    );

    assert_eq!(moved.survivors, stay.survivors);
    assert_eq!(
        moved.telemetry.frames_counters(),
        stay.telemetry.frames_counters()
    );
    assert!(moved.stream_health.iter().all(|h| h.healthy()));

    let _ = std::fs::remove_dir_all(&dir_home);
    let _ = std::fs::remove_dir_all(&dir_move);
}

// Random stream/fault mixes: whatever combination of panics, stalls, and
// dropped pushes lands on the pooled SDD/SNM stages, (a) every offered frame
// is disposed exactly once, (b) each stream's survivors stay in strictly
// increasing seq order (per-stream FIFO), and (c) the pooled run is
// bit-identical to the per-stream-thread run under the same plan.
proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
    #[test]
    fn random_fault_mixes_conserve_frames_and_fifo_under_pooling(
        faults in proptest::collection::vec((0usize..STREAMS, 0u8..6, 0u64..300), 0..5),
        workers in 1usize..9,
    ) {
        let mut plan = FaultPlan::new();
        for (stream, kind, at) in faults {
            let seq = base_seq(stream) + at;
            let (stage, fault) = match kind {
                0 => (FaultStage::Sdd, StageFault::PanicAtFrame(seq)),
                1 => (FaultStage::Snm, StageFault::PanicAtFrame(seq)),
                2 => (FaultStage::Sdd, StageFault::StallFor { at_frame: seq, dur_us: 2_000 }),
                3 => (FaultStage::Snm, StageFault::StallFor { at_frame: seq, dur_us: 2_000 }),
                4 => (FaultStage::Sdd, StageFault::FailNextPush { at_frame: seq }),
                _ => (FaultStage::Snm, StageFault::FailNextPush { at_frame: seq }),
            };
            plan = plan.with(stream, stage, fault);
        }
        prop_assert!(plan.validate().is_ok());

        let base = FfsVaConfig {
            restart_budget: 1,
            restart_backoff_ms: 1,
            ..FfsVaConfig::default()
        };
        let pooled = run_multi_pipeline_rt_faulted(
            rt_streams(), &base.with_pool_workers(workers, workers), &plan,
        );
        let legacy = run_multi_pipeline_rt_faulted(rt_streams(), &base, &plan);

        let snap = &pooled.telemetry;
        for s in 0..STREAMS {
            // frame conservation: disposed exactly once
            let mut disposed = pooled.survivors[s].len() as u64;
            for stage in ["sdd", "snm", "tyolo", "reference"] {
                disposed += snap.counter(&format!("stream{s}.{stage}.frames_dropped"));
                disposed += snap.counter(&format!("stream{s}.{stage}.frames_quarantined"));
            }
            prop_assert_eq!(
                disposed, FRAMES,
                "stream {} lost or double-disposed frames under {:?} with {} workers",
                s, plan, workers
            );
            // per-stream FIFO: survivors emerge in source order
            let seqs: Vec<u64> = pooled.survivors[s].iter().map(|f| f.seq).collect();
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "stream {} survivors reordered under pooling: {:?}", s, seqs
            );
        }
        // bit-identity with the per-stream-thread layout under the same plan
        prop_assert_eq!(&pooled.survivors, &legacy.survivors);
        prop_assert_eq!(
            pooled.telemetry.frames_counters(),
            legacy.telemetry.frames_counters()
        );
        for s in 0..STREAMS {
            prop_assert_eq!(
                pooled.stream_health[s].quarantined,
                legacy.stream_health[s].quarantined,
                "stream {} quarantine verdict diverged", s
            );
        }
    }
}
