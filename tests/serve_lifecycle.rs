//! `ffsva serve` lifecycle battery (DESIGN.md §14): the resident daemon
//! must register/drop streams over its HTTP ops API, answer health and
//! telemetry without touching engine state, reject malformed requests and
//! over-capacity offers deterministically, pull network-attached cameras
//! with fault-modeled links — and above all drain gracefully: a drain mid-
//! run followed by `--resume` must finish with survivor sets bit-identical
//! to an uninterrupted run, even while stage-, instance- and source-fault
//! plans are all firing.

use ffs_va::core::{
    Daemon, DrainReport, Engine, FfsVaConfig, Mode, ServeConfig, StreamInput, StreamThresholds,
    SurvivingFrame,
};
use ffs_va::prelude::{ClusterFaultPlan, FrameTrace, SourceFaultPlan};
use ffs_va::video::workloads;
use ffs_va::video::{FrameServerOptions, ObjectClass, VideoStream};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// harness

fn synthetic_input(n: usize, target_every: usize) -> StreamInput {
    let traces = (0..n)
        .map(|i| {
            let target = target_every > 0 && i % target_every == 0;
            FrameTrace {
                seq: i as u64,
                pts_ms: (i as u64) * 33,
                sdd_distance: if target { 0.01 } else { 0.0001 },
                snm_prob: if target { 0.9 } else { 0.05 },
                tyolo_count: u16::from(target),
                reference_count: u16::from(target),
                truth_count: u16::from(target),
                truth_complete: u16::from(target),
            }
        })
        .collect();
    StreamInput {
        traces,
        thresholds: StreamThresholds {
            delta_diff: 0.001,
            t_pre: 0.5,
            number_of_objects: 1,
        },
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffsva_serve_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawn a daemon and hand back its address, a drain trigger, and the
/// running thread (joins into the drain report).
fn spawn_daemon(
    cfg: ServeConfig,
) -> (
    SocketAddr,
    ffs_va::core::DrainHandle,
    JoinHandle<std::io::Result<DrainReport>>,
) {
    let daemon = Daemon::start(FfsVaConfig::default(), cfg).expect("daemon start");
    let addr = daemon.local_addr();
    let handle = daemon.drain_handle();
    let thread = std::thread::spawn(move || daemon.run());
    (addr, handle, thread)
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> serde_json::Value {
        serde_json::from_slice(&self.body).expect("JSON body")
    }
}

/// One raw HTTP/1.1 exchange; the server closes after each response.
fn raw(addr: SocketAddr, request: &str) -> Response {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    conn.write_all(request.as_bytes()).expect("send");
    let mut buf = Vec::new();
    conn.read_to_end(&mut buf).expect("recv");
    let text_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8_lossy(&buf[..text_end]).to_string();
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: buf[text_end + 4..].to_vec(),
    }
}

fn get(addr: SocketAddr, path: &str) -> Response {
    raw(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    raw(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn delete(addr: SocketAddr, path: &str) -> Response {
    raw(addr, &format!("DELETE {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn inline_body(input: &StreamInput) -> String {
    serde_json::json!({
        "kind": "inline",
        "traces": input.traces,
        "thresholds": input.thresholds,
    })
    .to_string()
}

/// Poll `GET /streams/<id>` until the predicate holds (panics on timeout).
fn wait_stream(
    addr: SocketAddr,
    id: usize,
    what: &str,
    pred: impl Fn(&serde_json::Value) -> bool,
) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = get(addr, &format!("/streams/{id}"));
        assert_eq!(resp.status, 200, "stream {id} status poll");
        let status = resp.json();
        if pred(&status) {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for stream {id} to be {what}; last status {status}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// tests

#[test]
fn ops_api_covers_the_stream_lifecycle() {
    let dir = tmp_dir("lifecycle");
    let expected = Engine::new(
        FfsVaConfig::default(),
        Mode::Online,
        vec![synthetic_input(320, 8)],
    )
    .run()
    .per_stream_survivors;

    let mut cfg = ServeConfig::new(&dir);
    cfg.epoch_frames = 100;
    let (addr, drain, thread) = spawn_daemon(cfg);

    // health surface is up before any stream exists
    assert_eq!(get(addr, "/healthz").status, 200);
    assert_eq!(get(addr, "/readyz").status, 200);
    assert_eq!(get(addr, "/nonsense").status, 404);

    // a malformed request is rejected without touching engine state
    assert_eq!(raw(addr, "BLARG\r\n\r\n").status, 400);
    assert_eq!(post(addr, "/streams", "{\"kind\":\"laser\"}").status, 400);
    assert_eq!(get(addr, "/streams/xyz").status, 400);

    // register, watch it run to completion, and check the survivors bit
    let resp = post(addr, "/streams", &inline_body(&synthetic_input(320, 8)));
    assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
    let created = resp.json();
    assert_eq!(created["id"], 0);
    assert_eq!(created["total_frames"], 320);
    assert_eq!(created["source_lost"], false);

    let done = wait_stream(addr, 0, "completed", |s| s["state"] == "completed");
    assert_eq!(done["cursor"], 320);

    let survivors: Vec<SurvivingFrame> =
        serde_json::from_slice(&get(addr, "/streams/0/survivors").body).expect("survivors");
    assert_eq!(
        survivors, expected[0],
        "daemon-run survivors must match the monolithic engine"
    );

    // telemetry: one-shot snapshot plus the NDJSON change feed
    let snapshot = get(addr, "/telemetry").json();
    assert_eq!(snapshot["counters"]["cluster.offers"], 1);
    assert_eq!(snapshot["counters"]["serve.streams_registered"], 1);
    assert!(
        snapshot["counters"]["serve.http_requests"]
            .as_u64()
            .unwrap()
            > 1
    );

    let feed = get(addr, "/telemetry/stream?max=2");
    assert_eq!(feed.status, 200);
    let lines: Vec<&[u8]> = feed
        .body
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .collect();
    assert_eq!(lines.len(), 2, "feed must emit exactly max events");
    for (i, line) in lines.iter().enumerate() {
        let ev: serde_json::Value = serde_json::from_slice(line).expect("feed event");
        assert_eq!(ev["seq"], i as u64);
        assert!(!ev["changed"].as_array().unwrap().is_empty());
    }

    // terminal streams cannot be dropped; unknown ids are distinct
    assert_eq!(delete(addr, "/streams/0").status, 409);
    assert_eq!(delete(addr, "/streams/99").status, 404);

    // a live stream can: register a long server-side synthetic one (no
    // 100k-trace body needed), then drop it mid-flight
    let long = r#"{"kind":"synthetic","frames":100000,"target_every":8}"#;
    let resp = post(addr, "/streams", long);
    assert_eq!(resp.status, 201);
    assert_eq!(resp.json()["id"], 1);
    let resp = delete(addr, "/streams/1");
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.json()["state"], "dropped");
    assert_eq!(get(addr, "/streams/1").json()["state"], "dropped");

    // drain over the API: readyz flips, registration refuses, run() returns
    assert_eq!(post(addr, "/drain", "").status, 202);
    drain.drain(); // idempotent with the API path
    let report = thread.join().expect("join").expect("drain");
    assert_eq!(report.reason, "api");
    assert_eq!(report.streams.len(), 2);
    assert_eq!(report.streams[0].state, "completed");
    assert_eq!(report.streams[1].state, "dropped");
    assert!(dir.join("manifest.json").is_file());
    assert!(dir.join("drain-report.json").is_file());
    let recorded = std::fs::read_to_string(dir.join("serve.addr")).expect("serve.addr");
    assert_eq!(recorded.parse::<SocketAddr>().expect("recorded addr"), addr);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_and_resume_are_bit_identical_under_active_fault_plans() {
    let dir = tmp_dir("drain_resume");
    let inputs: Vec<StreamInput> = (0..3).map(|_| synthetic_input(1000, 8)).collect();
    let splan = SourceFaultPlan::parse("stream0.src:drop@10..15,stream2.src:corrupt@260").unwrap();
    let cplan = ClusterFaultPlan::parse("instance0:crash@150,stream1.snm:stall@120+60ms").unwrap();
    // reference: the same streams, uninterrupted, in one monolithic engine
    // with the same source faults (the stall shifts timing, the crash only
    // moves streams — neither may change a single survivor bit)
    let expected = Engine::new(FfsVaConfig::default(), Mode::Online, inputs.clone())
        .with_source_plan(&splan)
        .run()
        .per_stream_survivors;

    let mut cfg = ServeConfig::new(&dir);
    cfg.epoch_frames = 100;
    cfg.epoch_interval = Duration::from_millis(25);
    cfg.fault_plan = Some(cplan.clone());
    cfg.source_plan = Some(splan.clone());
    let (addr, drain, thread) = spawn_daemon(cfg);

    for (i, input) in inputs.iter().enumerate() {
        let resp = post(addr, "/streams", &inline_body(input));
        assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(resp.json()["id"], i as u64);
    }
    // let at least one epoch land, then pull the plug mid-run
    wait_stream(addr, 2, "past its first epoch", |s| {
        s["cursor"].as_u64().unwrap() >= 100
    });
    drain.drain();
    let report = thread.join().expect("join").expect("drain");
    assert_eq!(report.reason, "handle");
    assert!(report.epoch >= 1);
    assert!(dir.join("manifest.json").is_file());

    // resume against the same state dir and the same fault plans
    let mut cfg = ServeConfig::new(&dir);
    cfg.epoch_frames = 100;
    cfg.fault_plan = Some(cplan);
    cfg.source_plan = Some(splan);
    cfg.resume = true;
    let (addr, drain, thread) = spawn_daemon(cfg);
    for i in 0..3 {
        wait_stream(addr, i, "completed", |s| s["state"] == "completed");
    }
    for (i, exp) in expected.iter().enumerate() {
        let survivors: Vec<SurvivingFrame> =
            serde_json::from_slice(&get(addr, &format!("/streams/{i}/survivors")).body)
                .expect("survivors");
        assert_eq!(
            &survivors, exp,
            "stream {i}: drain/resume drifted from the uninterrupted run"
        );
    }
    drain.drain();
    let report = thread.join().expect("join").expect("drain");
    assert!(report.streams.iter().all(|s| s.state == "completed"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registration_thresholds_apply_to_synthetic_streams() {
    // ROADMAP item 2 gap: `synthetic`/`socket` specs used to take default
    // thresholds no matter what the registration asked for, so a tuned
    // config was unapplicable at POST /streams. Two streams over the same
    // trace shape must now diverge purely on their registered thresholds.
    let dir = tmp_dir("thresholds");
    let mut cfg = ServeConfig::new(&dir);
    cfg.epoch_frames = 100;
    let (addr, drain, thread) = spawn_daemon(cfg);

    // default thresholds: every 8th frame survives the cascade
    let default_spec = r#"{"kind":"synthetic","frames":160,"target_every":8}"#;
    let resp = post(addr, "/streams", default_spec);
    assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
    // per-stream thresholds above the synthetic SNM probability (0.9):
    // the same trace shape now forwards nothing
    let strict_spec = r#"{"kind":"synthetic","frames":160,"target_every":8,
        "thresholds":{"delta_diff":0.001,"t_pre":0.95,"number_of_objects":1}}"#;
    let resp = post(addr, "/streams", strict_spec);
    assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));

    wait_stream(addr, 0, "completed", |s| s["state"] == "completed");
    wait_stream(addr, 1, "completed", |s| s["state"] == "completed");
    let default_survivors: Vec<SurvivingFrame> =
        serde_json::from_slice(&get(addr, "/streams/0/survivors").body).expect("survivors 0");
    let strict_survivors: Vec<SurvivingFrame> =
        serde_json::from_slice(&get(addr, "/streams/1/survivors").body).expect("survivors 1");
    assert_eq!(default_survivors.len(), 20, "one target every 8 of 160");
    assert!(
        strict_survivors.is_empty(),
        "t_pre 0.95 must gate the 0.9-probability targets, got {} survivors",
        strict_survivors.len()
    );

    drain.drain();
    thread.join().expect("join").expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_rejects_over_capacity_offers_with_retry_after() {
    let dir = tmp_dir("admission");
    let mut cfg = ServeConfig::new(&dir);
    cfg.instances = 1;
    // freeze the control loop so completed work cannot free capacity
    // between registrations: rejection is then a pure admission decision
    cfg.epoch_interval = Duration::from_secs(3600);
    let (addr, drain, thread) = spawn_daemon(cfg);

    let heavy = inline_body(&synthetic_input(300, 1));
    let mut rejected = None;
    for i in 0..40 {
        let resp = post(addr, "/streams", &heavy);
        match resp.status {
            201 => continue,
            429 => {
                rejected = Some((i, resp));
                break;
            }
            other => panic!("unexpected status {other}"),
        }
    }
    let (after, resp) = rejected.expect("a single instance must saturate within 40 heavy streams");
    assert!(after >= 1, "one heavy stream must be admissible");
    let retry_after: u64 = resp
        .header("Retry-After")
        .expect("Retry-After header")
        .parse()
        .expect("numeric Retry-After");
    assert!(retry_after >= 1);
    assert_eq!(resp.json()["state"], "rejected");
    assert_eq!(resp.json()["retry_after_s"], retry_after);

    drain.drain();
    let report = thread.join().expect("join").expect("drain");
    assert_eq!(report.reason, "handle");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn socket_cameras_register_and_degrade_on_link_loss() {
    let dir = tmp_dir("socket");
    let clip = VideoStream::new(0, workloads::test_tiny(ObjectClass::Car, 0.3, 42)).clip(40);
    let (addr, _, thread) = spawn_daemon(ServeConfig::new(&dir));

    // a healthy camera delivers its whole clip
    let (cam, cam_thread) =
        ffs_va::video::spawn_frame_server(clip.clone(), FrameServerOptions::default())
            .expect("camera");
    let spec = serde_json::json!({"kind": "socket", "addr": cam.to_string()}).to_string();
    let resp = post(addr, "/streams", &spec);
    assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.json()["total_frames"], 40);
    assert_eq!(resp.json()["source_lost"], false);
    cam_thread.join().expect("camera thread");

    // a camera that dies mid-clip and never comes back: the delivered
    // prefix registers, flagged source_lost
    let (cam, cam_thread) = ffs_va::video::spawn_frame_server(
        clip,
        FrameServerOptions {
            disconnect_after: Some(8),
            max_conns: Some(1),
        },
    )
    .expect("flaky camera");
    let spec = serde_json::json!({
        "kind": "socket",
        "addr": cam.to_string(),
        "retry_budget": 2,
        "backoff_ms": 2,
        "backoff_cap_ms": 10,
    })
    .to_string();
    let resp = post(addr, "/streams", &spec);
    assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.json()["source_lost"], true);
    assert_eq!(resp.json()["total_frames"], 8);
    cam_thread.join().expect("flaky camera thread");

    // an unreachable camera is a clean 502, not a daemon fault
    let gone = {
        let l = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        l.local_addr().unwrap()
    };
    let spec = serde_json::json!({
        "kind": "socket",
        "addr": gone.to_string(),
        "retry_budget": 1,
        "backoff_ms": 2,
        "backoff_cap_ms": 4,
    })
    .to_string();
    assert_eq!(post(addr, "/streams", &spec).status, 502);
    assert_eq!(get(addr, "/healthz").status, 200, "daemon must survive");

    // in-process drain (the SIGTERM path shares this code)
    assert_eq!(post(addr, "/drain", "").status, 202);
    let report = thread.join().expect("join").expect("drain");
    assert_eq!(report.reason, "api");
    let _ = std::fs::remove_dir_all(&dir);
}
