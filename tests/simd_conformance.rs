//! SIMD ↔ scalar kernel conformance battery (DESIGN.md §12).
//!
//! CI runs this file twice — once on the default (scalar) build and once
//! with `--features simd` — so every property below is checked on both
//! sides of the dispatch:
//!
//! * without the feature (or on a non-AVX2 CPU) the dispatched entry
//!   points ARE the scalar kernels, so the f32 properties collapse to
//!   bit-identity and pin that the dispatchers add nothing;
//! * with the feature on an AVX2+FMA host, the f32 kernels must agree
//!   with the scalar references within the documented ULP-derived bounds,
//!   and every integer kernel must stay bit-identical.

use ffs_va::models::snm::SnmModel;
use ffs_va::models::Scratch;
use ffs_va::tensor::ops::{im2col_into, matmul_into, matmul_into_scalar, ConvGeom};
use ffs_va::tensor::quant::{
    dot_i8, gemm_i8_into, im2col_i8_into, quantize_rows_symmetric_i8_into,
    quantize_symmetric_i8_into,
};
use ffs_va::tensor::simd::{
    simd_active, sum_abs_diff, sum_abs_diff_scalar, sum_sq_diff, sum_sq_diff_scalar,
};
use ffs_va::tensor::Tensor;
use ffs_va::video::workloads;
use ffs_va::video::{ObjectClass, VideoStream};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Without the `simd` feature the dispatcher must never report an active
/// fast path — the scalar semantics are the only semantics.
#[test]
fn dispatch_is_inert_without_feature() {
    if cfg!(feature = "simd") {
        // With the feature the answer is CPU-dependent; just force the
        // probe so a broken CPUID check panics here and not mid-kernel.
        let _ = simd_active();
    } else {
        assert!(
            !simd_active(),
            "simd_active() must be false on scalar builds"
        );
    }
}

/// (m, k, n, A, B) for a random small GEMM.
fn matmul_case() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (1usize..8, 1usize..32, 1usize..8).prop_flat_map(|(m, k, n)| {
        (
            Just(m),
            Just(k),
            Just(n),
            prop::collection::vec(-3.0f32..3.0, m * k),
            prop::collection::vec(-3.0f32..3.0, k * n),
        )
    })
}

/// Conv geometry + input plane(s) with the degenerate shapes filtered out.
fn im2col_case() -> impl Strategy<Value = (usize, ConvGeom, Vec<f32>)> {
    (
        1usize..3,
        1usize..8,
        1usize..8,
        1usize..4,
        1usize..3,
        0usize..2,
    )
        .prop_filter_map("kernel must fit padded input", |(c, h, w, k, s, p)| {
            ConvGeom::new(h, w, k, s, p).ok().map(|g| (c, g, h, w))
        })
        .prop_flat_map(|(c, geom, h, w)| {
            (
                Just(c),
                Just(geom),
                prop::collection::vec(-2.0f32..2.0, c * h * w),
            )
        })
}

proptest! {
    /// Dispatched GEMM vs the always-available scalar kernel. The FMA path
    /// keeps the scalar accumulation order but single-rounds each step, so
    /// each of the k updates differs by ≤1 ULP of the running magnitude —
    /// bounded here by Σ|a·b| scaled by k·ε (with headroom). On a scalar
    /// build the two calls are the same code and must agree bit-for-bit.
    #[test]
    fn matmul_dispatch_conforms_to_scalar((m, k, n, a, b) in matmul_case()) {
        let at = Tensor::from_vec(&[m, k], a.clone());
        let bt = Tensor::from_vec(&[k, n], b.clone());
        let mut got = Vec::new();
        let mut want = Vec::new();
        matmul_into(&at, &bt, &mut got);
        matmul_into_scalar(&at, &bt, &mut want);
        prop_assert_eq!(got.len(), want.len());
        for i in 0..m {
            for j in 0..n {
                let (g, w) = (got[i * n + j], want[i * n + j]);
                if !simd_active() {
                    prop_assert_eq!(g.to_bits(), w.to_bits(), "scalar build must be bit-identical at ({}, {})", i, j);
                    continue;
                }
                let mag: f32 = (0..k).map(|p| (a[i * k + p] * b[p * n + j]).abs()).sum();
                let tol = mag * (k as f32) * f32::EPSILON * 8.0 + 1e-6;
                prop_assert!(
                    (g - w).abs() <= tol,
                    "({}, {}): dispatched {} vs scalar {} exceeds tol {}", i, j, g, w, tol
                );
            }
        }
    }

    /// im2col is pure data movement, so the span fast path selected under
    /// the `simd` feature must be bit-identical to an element-by-element
    /// gather reference (padding taps exactly zero, everything else copied
    /// from the computed source slot).
    #[test]
    fn im2col_matches_gather_reference((c, geom, input) in im2col_case()) {
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let (k, cols) = (geom.kernel, oh * ow);
        let mut got = Vec::new();
        im2col_into(&input, c, geom, &mut got);

        let mut want = vec![0.0f32; c * k * k * cols];
        for ch in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ch * k + ky) * k + kx;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if iy < 0 || ix < 0 || iy >= geom.in_h as isize || ix >= geom.in_w as isize {
                                continue;
                            }
                            want[row * cols + oy * ow + ox] = input
                                [(ch * geom.in_h + iy as usize) * geom.in_w + ix as usize];
                        }
                    }
                }
            }
        }
        prop_assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            prop_assert_eq!(g.to_bits(), w.to_bits(), "im2col slot {} diverged", i);
        }
    }

    /// The SDD distance reductions: lane-parallel accumulation reassociates
    /// the sum, bounded by n·ε of the magnitude sum; scalar builds must be
    /// bit-identical.
    #[test]
    fn sdd_reductions_conform_to_scalar(
        pairs in prop::collection::vec((-3.0f32..3.0, -3.0f32..3.0), 0..300)
    ) {
        let a: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let (sq_s, sq_d) = (sum_sq_diff_scalar(&a, &b), sum_sq_diff(&a, &b));
        let (ab_s, ab_d) = (sum_abs_diff_scalar(&a, &b), sum_abs_diff(&a, &b));
        if !simd_active() {
            prop_assert_eq!(sq_s.to_bits(), sq_d.to_bits());
            prop_assert_eq!(ab_s.to_bits(), ab_d.to_bits());
        } else {
            let n = a.len().max(1) as f32;
            prop_assert!((sq_s - sq_d).abs() <= n * f32::EPSILON * sq_s.abs() * 8.0 + 1e-6);
            prop_assert!((ab_s - ab_d).abs() <= n * f32::EPSILON * ab_s.abs() * 8.0 + 1e-6);
        }
    }

    /// Integer GEMM is exact on every path: i8 products fit i16, sums fit
    /// i32, integer addition is associative — so scalar and AVX2 must match
    /// a wide (i64) reference bit-for-bit, feature or no feature.
    #[test]
    fn i8_gemm_is_exact(
        (m, k, n) in (1usize..6, 1usize..40, 1usize..6),
        seed in any::<u64>()
    ) {
        let mut x = seed | 1;
        let mut next_i8 = move || {
            // xorshift; full i8 range except -128 (quantizer never emits it)
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 255) as i16 - 127) as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| next_i8()).collect();
        let mut got = Vec::new();
        gemm_i8_into(&a, m, k, &b, n, &mut got);
        for i in 0..m {
            for j in 0..n {
                let want: i64 = (0..k).map(|p| a[i * k + p] as i64 * b[p * n + j] as i64).sum();
                prop_assert_eq!(got[i * n + j] as i64, want, "i8 gemm drifted at ({}, {})", i, j);
            }
        }
        // dot_i8 is the Dense-layer inner kernel; pin it against row 0 too.
        if m == 1 && n == 1 {
            prop_assert_eq!(dot_i8(&a, &b) as i64,
                (0..k).map(|p| a[p] as i64 * b[p] as i64).sum::<i64>());
        }
    }

    /// Per-row (per-sample) quantization must equal quantizing each row in
    /// isolation — scales included, bit-for-bit. This is the property the
    /// int8 batch↔single inference identity rests on.
    #[test]
    fn row_quantization_is_independent_of_batch(
        rows in prop::collection::vec(prop::collection::vec(-4.0f32..4.0, 12), 1..5)
    ) {
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let mut q_all = Vec::new();
        let mut s_all = Vec::new();
        quantize_rows_symmetric_i8_into(&flat, rows.len(), &mut q_all, &mut s_all);
        for (r, row) in rows.iter().enumerate() {
            let mut q_one = Vec::new();
            let s_one = quantize_symmetric_i8_into(row, &mut q_one);
            prop_assert_eq!(&q_all[r * 12..(r + 1) * 12], &q_one[..], "row {} codes", r);
            prop_assert_eq!(s_all[r].to_bits(), s_one.to_bits(), "row {} scale", r);
        }
    }

    /// Quantize-then-unfold equals unfold-then-quantize: conv zero-padding
    /// quantizes to exactly the code of a zero pixel, so the i8 im2col can
    /// run on pre-quantized activations without changing any slot.
    #[test]
    fn i8_im2col_commutes_with_quantization((c, geom, input) in im2col_case()) {
        let mut q = Vec::new();
        let scale = quantize_symmetric_i8_into(&input, &mut q);
        let mut cols_q = Vec::new();
        im2col_i8_into(&q, 1, c, geom, &mut cols_q);
        let mut cols_f = Vec::new();
        im2col_into(&input, c, geom, &mut cols_f);
        prop_assert_eq!(cols_q.len(), cols_f.len());
        let inv = 1.0 / scale;
        for (i, (&qc, &fc)) in cols_q.iter().zip(cols_f.iter()).enumerate() {
            let want = (fc * inv).round().clamp(-127.0, 127.0) as i8;
            prop_assert_eq!(qc, want, "slot {} diverged after quantization", i);
        }
    }
}

/// int8 batched SNM inference must be bit-identical to per-frame int8
/// inference at every batch size — the invariant that lets `snm_precision:
/// int8` keep the DES↔RT survivor-set conformance (both engines agree on
/// the same quantized probabilities regardless of how frames were batched).
#[test]
fn int8_snm_batching_is_bit_invariant() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut snm = SnmModel::architecture(ObjectClass::Car, &mut rng);
    let mut stream = VideoStream::new(0, workloads::test_tiny(ObjectClass::Car, 0.3, 7));
    let clip = stream.clip(23);
    let frames: Vec<&ffs_va::video::Frame> = clip.iter().map(|lf| &lf.frame).collect();

    let mut scratch = Scratch::default();
    let singles: Vec<f32> = frames.iter().map(|f| snm.predict_int8(f)).collect();
    for batch in [1usize, 2, 7, 10, 23] {
        let mut got = Vec::new();
        for chunk in frames.chunks(batch) {
            got.extend(snm.predict_batch_frames_int8(chunk, &mut scratch));
        }
        assert_eq!(got.len(), singles.len());
        for (i, (g, s)) in got.iter().zip(singles.iter()).enumerate() {
            assert_eq!(
                g.to_bits(),
                s.to_bits(),
                "frame {i} diverged at batch size {batch}: {g} vs {s}"
            );
        }
    }
}
