//! Auto-tuning + drift-recalibration battery (DESIGN.md §15): the tuner
//! must be deterministic (same inputs → byte-identical report), its winner
//! must replay on the real-model engine with exactly the accuracy and
//! forwarding it promised, and online recalibration must not lose scenes
//! the static pipeline would have caught on a day→night drifting clip.

use ffs_va::core::{
    drift_ablation, scene_miss_from_survivors, tune, DriftConfig, TuneInput, TuneOptions,
};
use ffs_va::prelude::*;
use ffs_va::video::BackgroundKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Seed of the bank-training RNG; [`twin_bank`] replays it to reproduce the
/// tracing bank bit-identically.
const BANK_SEED: u64 = 5;

fn quick_bank_opts() -> BankOptions {
    BankOptions {
        snm: ffs_va::models::snm::SnmTrainOptions {
            epochs: 10,
            batch_size: 16,
            lr: 0.08,
            train_frac: 0.7,
            max_samples: 300,
            restarts: 2,
        },
        ..Default::default()
    }
}

/// Shared calibration material: pixels are generated and the SNM trained
/// once per test binary.
struct TuneCtx {
    training: Vec<LabeledFrame>,
    calib: Vec<LabeledFrame>,
    input: TuneInput,
    target: ObjectClass,
}

fn ctx() -> &'static TuneCtx {
    static CTX: OnceLock<TuneCtx> = OnceLock::new();
    CTX.get_or_init(|| {
        let cfg = workloads::test_tiny(ObjectClass::Car, 0.3, 42);
        let target = cfg.target;
        let mut camera = VideoStream::new(0, cfg);
        let training = camera.clip(1200);
        let mut rng = StdRng::seed_from_u64(BANK_SEED);
        let mut bank = FilterBank::build(&training, target, &quick_bank_opts(), &mut rng);
        let calib = camera.clip(700);
        let input = TuneInput {
            workload: "tiny-car".into(),
            traces_f32: bank.trace_clip(&calib),
            traces_int8: Some(bank.trace_clip_int8(&calib)),
            delta_diff: bank.sdd.delta_diff,
            c_low: bank.snm.c_low,
            c_high: bank.snm.c_high,
        };
        TuneCtx {
            training,
            calib,
            input,
            target,
        }
    })
}

/// A bank bit-identical to the one that traced the calibration clip:
/// `FilterBank::build` is a pure function of (clip, options, rng stream).
fn twin_bank() -> FilterBank {
    let c = ctx();
    let mut rng = StdRng::seed_from_u64(BANK_SEED);
    FilterBank::build(&c.training, c.target, &quick_bank_opts(), &mut rng)
}

fn small_opts() -> TuneOptions {
    TuneOptions {
        miss_rate_bound: 0.02,
        streams: 2,
        number_of_objects: 1,
        des_budget: 6,
        top_k: 5,
        snm_cost: None,
        seed: 0,
    }
}

/// Same input, same options → byte-identical report, and the winner is a
/// DES-priced feasible point at the top of a correctly sorted ranking.
#[test]
fn tune_is_deterministic_on_a_real_workload() {
    let c = ctx();
    let opts = small_opts();
    let a = tune(&c.input, &opts);
    let b = tune(&c.input, &opts);
    let ja = serde_json::to_string(&a).expect("serialize report");
    let jb = serde_json::to_string(&b).expect("serialize report");
    assert_eq!(ja, jb, "tune is not deterministic");

    let w = a
        .winner
        .as_ref()
        .expect("no feasible winner on the workload");
    assert!(w.feasible);
    assert!(w.scene_miss_rate < opts.miss_rate_bound);
    let w_fps = w.predicted_fps.expect("winner must be DES-priced");
    assert_eq!(a.ranked.first().map(|r| r.index), Some(w.index));
    let fps: Vec<f64> = a.ranked.iter().filter_map(|r| r.predicted_fps).collect();
    assert_eq!(fps.len(), a.ranked.len(), "unpriced candidate in ranking");
    assert!(fps.windows(2).all(|p| p[0] >= p[1]), "ranking not sorted");
    assert!(a.ranked.len() <= opts.top_k);

    let base_fps = a.baseline.predicted_fps.expect("baseline always priced");
    if a.baseline.feasible {
        assert!(
            w_fps >= base_fps,
            "winner ({:.0} fps) beaten by the untuned baseline ({:.0} fps)",
            w_fps,
            base_fps
        );
    }
    let cfg = a.config.as_ref().expect("winner implies blessable config");
    assert_eq!(cfg.filter_degree, w.knobs.filter_degree);
    assert_eq!(cfg.number_of_objects, w.thresholds.number_of_objects);
}

/// DES↔RT conformance for the blessed config: replaying the winner through
/// the real-model engine forwards exactly the frames the tuner scored and
/// holds the promised scene-miss rate.
#[test]
fn tuned_winner_replays_on_the_rt_engine_with_promised_accuracy() {
    let c = ctx();
    let opts = small_opts();
    let report = tune(&c.input, &opts);
    let w = report.winner.clone().expect("no feasible winner");
    let cfg = report.config.clone().expect("no blessable config");

    let mut bank = twin_bank();
    let reference = bank.reference.clone();
    // Eq. 2 agreement: the t_pre the tuner blessed must be bit-identical to
    // what the engine derives from the FilterDegree on the bank's own band.
    assert_eq!(
        bank.snm.t_pre(cfg.filter_degree).to_bits(),
        w.thresholds.t_pre.to_bits(),
        "blessed t_pre diverges from SnmModel::t_pre"
    );
    bank.sdd.delta_diff = w.thresholds.delta_diff;
    let rt = run_pipeline_rt(c.calib.clone(), bank, &cfg);

    assert_eq!(
        rt.survivors.len(),
        w.forwarded_frames,
        "RT engine forwarded a different frame count than the tuner scored"
    );
    let miss = scene_miss_from_survivors(
        &c.calib,
        &rt.survivors,
        &reference,
        c.target,
        opts.number_of_objects,
    );
    assert!(
        (miss - w.scene_miss_rate).abs() < 1e-12,
        "replayed scene miss {} != scored {}",
        miss,
        w.scene_miss_rate
    );
    assert!(
        miss < opts.miss_rate_bound,
        "blessed config misses {:.2}% of scenes on replay (bound {:.1}%)",
        miss * 100.0,
        opts.miss_rate_bound * 100.0
    );
}

/// Day→night ablation: a bank trained under static illumination watches a
/// twin scene whose light descends to the cycle trough. The recalibrating
/// pipeline must notice the regime shift, rebuild its SDD reference, and
/// end no worse (within slack) than the static pipeline on scene recall.
#[test]
fn online_recalibration_survives_day_to_night_drift() {
    let day = workloads::test_tiny(ObjectClass::Car, 0.3, 11);
    let mut night = day.clone();
    night.background = BackgroundKind::Dynamic {
        period_frames: 1800, // trough lands at the end of the 900-frame eval
        amplitude: 0.8,
        drift_sigma: 0.0,
    };
    let mut cam_day = VideoStream::new(0, day);
    let training = cam_day.clip(1200);
    // identically-trained twins: each pipeline run consumes its bank
    let mut rng_a = StdRng::seed_from_u64(BANK_SEED);
    let mut rng_b = StdRng::seed_from_u64(BANK_SEED);
    let bank_static =
        FilterBank::build(&training, ObjectClass::Car, &quick_bank_opts(), &mut rng_a);
    let bank_recal = FilterBank::build(&training, ObjectClass::Car, &quick_bank_opts(), &mut rng_b);
    let mut cam_night = VideoStream::new(0, night);
    let eval = cam_night.clip(900);

    let drift = DriftConfig {
        window: 60,
        ratio: 2.0,
        cooldown: 120,
        floor: 1e-4,
    };
    let cfg = FfsVaConfig::default();
    let ab = drift_ablation(&eval, bank_static, bank_recal, &cfg, drift);

    assert_eq!(ab.frames, 900);
    assert!(
        ab.detections >= 1,
        "day→night illumination shift never detected: {:?}",
        ab
    );
    assert_eq!(
        ab.sdd_rebuilds, ab.detections,
        "every detection must rebuild the SDD reference"
    );
    assert!(ab.snm_retunes <= ab.detections);
    assert!(
        ab.recal_miss_rate <= ab.static_miss_rate + 0.15,
        "recalibration lost scenes the static pipeline kept: {:?}",
        ab
    );
}
